
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/turnnet/analysis/adaptiveness.cpp" "src/CMakeFiles/turnnet.dir/turnnet/analysis/adaptiveness.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/analysis/adaptiveness.cpp.o.d"
  "/root/repo/src/turnnet/analysis/cdg.cpp" "src/CMakeFiles/turnnet.dir/turnnet/analysis/cdg.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/analysis/cdg.cpp.o.d"
  "/root/repo/src/turnnet/analysis/path_enum.cpp" "src/CMakeFiles/turnnet.dir/turnnet/analysis/path_enum.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/analysis/path_enum.cpp.o.d"
  "/root/repo/src/turnnet/analysis/reachability.cpp" "src/CMakeFiles/turnnet.dir/turnnet/analysis/reachability.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/analysis/reachability.cpp.o.d"
  "/root/repo/src/turnnet/analysis/vc_cdg.cpp" "src/CMakeFiles/turnnet.dir/turnnet/analysis/vc_cdg.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/analysis/vc_cdg.cpp.o.d"
  "/root/repo/src/turnnet/common/cli.cpp" "src/CMakeFiles/turnnet.dir/turnnet/common/cli.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/common/cli.cpp.o.d"
  "/root/repo/src/turnnet/common/csv.cpp" "src/CMakeFiles/turnnet.dir/turnnet/common/csv.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/common/csv.cpp.o.d"
  "/root/repo/src/turnnet/common/logging.cpp" "src/CMakeFiles/turnnet.dir/turnnet/common/logging.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/common/logging.cpp.o.d"
  "/root/repo/src/turnnet/common/rng.cpp" "src/CMakeFiles/turnnet.dir/turnnet/common/rng.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/common/rng.cpp.o.d"
  "/root/repo/src/turnnet/common/stats.cpp" "src/CMakeFiles/turnnet.dir/turnnet/common/stats.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/common/stats.cpp.o.d"
  "/root/repo/src/turnnet/common/thread_pool.cpp" "src/CMakeFiles/turnnet.dir/turnnet/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/common/thread_pool.cpp.o.d"
  "/root/repo/src/turnnet/harness/bench_report.cpp" "src/CMakeFiles/turnnet.dir/turnnet/harness/bench_report.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/harness/bench_report.cpp.o.d"
  "/root/repo/src/turnnet/harness/figures.cpp" "src/CMakeFiles/turnnet.dir/turnnet/harness/figures.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/harness/figures.cpp.o.d"
  "/root/repo/src/turnnet/harness/sweep.cpp" "src/CMakeFiles/turnnet.dir/turnnet/harness/sweep.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/harness/sweep.cpp.o.d"
  "/root/repo/src/turnnet/network/buffer.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/buffer.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/buffer.cpp.o.d"
  "/root/repo/src/turnnet/network/input_unit.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/input_unit.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/input_unit.cpp.o.d"
  "/root/repo/src/turnnet/network/metrics.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/metrics.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/metrics.cpp.o.d"
  "/root/repo/src/turnnet/network/network.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/network.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/network.cpp.o.d"
  "/root/repo/src/turnnet/network/output_unit.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/output_unit.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/output_unit.cpp.o.d"
  "/root/repo/src/turnnet/network/packet.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/packet.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/packet.cpp.o.d"
  "/root/repo/src/turnnet/network/router.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/router.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/router.cpp.o.d"
  "/root/repo/src/turnnet/network/selection.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/selection.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/selection.cpp.o.d"
  "/root/repo/src/turnnet/network/simulator.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/simulator.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/simulator.cpp.o.d"
  "/root/repo/src/turnnet/network/source_queue.cpp" "src/CMakeFiles/turnnet.dir/turnnet/network/source_queue.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/network/source_queue.cpp.o.d"
  "/root/repo/src/turnnet/routing/abonf.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/abonf.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/abonf.cpp.o.d"
  "/root/repo/src/turnnet/routing/abopl.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/abopl.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/abopl.cpp.o.d"
  "/root/repo/src/turnnet/routing/dateline_torus.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/dateline_torus.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/dateline_torus.cpp.o.d"
  "/root/repo/src/turnnet/routing/dimension_order.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/dimension_order.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/dimension_order.cpp.o.d"
  "/root/repo/src/turnnet/routing/double_y.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/double_y.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/double_y.cpp.o.d"
  "/root/repo/src/turnnet/routing/fully_adaptive.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/fully_adaptive.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/fully_adaptive.cpp.o.d"
  "/root/repo/src/turnnet/routing/negative_first.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/negative_first.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/negative_first.cpp.o.d"
  "/root/repo/src/turnnet/routing/north_last.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/north_last.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/north_last.cpp.o.d"
  "/root/repo/src/turnnet/routing/odd_even.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/odd_even.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/odd_even.cpp.o.d"
  "/root/repo/src/turnnet/routing/pcube.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/pcube.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/pcube.cpp.o.d"
  "/root/repo/src/turnnet/routing/registry.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/registry.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/registry.cpp.o.d"
  "/root/repo/src/turnnet/routing/routing_function.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/routing_function.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/routing_function.cpp.o.d"
  "/root/repo/src/turnnet/routing/torus_extensions.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/torus_extensions.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/torus_extensions.cpp.o.d"
  "/root/repo/src/turnnet/routing/two_phase.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/two_phase.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/two_phase.cpp.o.d"
  "/root/repo/src/turnnet/routing/vc_routing.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/vc_routing.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/vc_routing.cpp.o.d"
  "/root/repo/src/turnnet/routing/west_first.cpp" "src/CMakeFiles/turnnet.dir/turnnet/routing/west_first.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/routing/west_first.cpp.o.d"
  "/root/repo/src/turnnet/topology/coord.cpp" "src/CMakeFiles/turnnet.dir/turnnet/topology/coord.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/topology/coord.cpp.o.d"
  "/root/repo/src/turnnet/topology/direction.cpp" "src/CMakeFiles/turnnet.dir/turnnet/topology/direction.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/topology/direction.cpp.o.d"
  "/root/repo/src/turnnet/topology/hypercube.cpp" "src/CMakeFiles/turnnet.dir/turnnet/topology/hypercube.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/topology/hypercube.cpp.o.d"
  "/root/repo/src/turnnet/topology/mesh.cpp" "src/CMakeFiles/turnnet.dir/turnnet/topology/mesh.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/topology/mesh.cpp.o.d"
  "/root/repo/src/turnnet/topology/topology.cpp" "src/CMakeFiles/turnnet.dir/turnnet/topology/topology.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/topology/topology.cpp.o.d"
  "/root/repo/src/turnnet/topology/torus.cpp" "src/CMakeFiles/turnnet.dir/turnnet/topology/torus.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/topology/torus.cpp.o.d"
  "/root/repo/src/turnnet/traffic/generator.cpp" "src/CMakeFiles/turnnet.dir/turnnet/traffic/generator.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/traffic/generator.cpp.o.d"
  "/root/repo/src/turnnet/traffic/pattern.cpp" "src/CMakeFiles/turnnet.dir/turnnet/traffic/pattern.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/traffic/pattern.cpp.o.d"
  "/root/repo/src/turnnet/turnmodel/cycles.cpp" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/cycles.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/cycles.cpp.o.d"
  "/root/repo/src/turnnet/turnmodel/numbering.cpp" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/numbering.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/numbering.cpp.o.d"
  "/root/repo/src/turnnet/turnmodel/prohibition.cpp" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/prohibition.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/prohibition.cpp.o.d"
  "/root/repo/src/turnnet/turnmodel/turn.cpp" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/turn.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/turn.cpp.o.d"
  "/root/repo/src/turnnet/turnmodel/turn_routing.cpp" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/turn_routing.cpp.o" "gcc" "src/CMakeFiles/turnnet.dir/turnnet/turnmodel/turn_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
