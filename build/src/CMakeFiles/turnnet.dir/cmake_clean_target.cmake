file(REMOVE_RECURSE
  "libturnnet.a"
)
