# Empty dependencies file for test_vc_network.
# This may be replaced when dependencies are built.
