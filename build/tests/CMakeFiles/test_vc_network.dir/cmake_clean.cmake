file(REMOVE_RECURSE
  "CMakeFiles/test_vc_network.dir/test_vc_network.cpp.o"
  "CMakeFiles/test_vc_network.dir/test_vc_network.cpp.o.d"
  "test_vc_network"
  "test_vc_network.pdb"
  "test_vc_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vc_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
