# Empty dependencies file for test_path_validation.
# This may be replaced when dependencies are built.
