file(REMOVE_RECURSE
  "CMakeFiles/test_path_validation.dir/test_path_validation.cpp.o"
  "CMakeFiles/test_path_validation.dir/test_path_validation.cpp.o.d"
  "test_path_validation"
  "test_path_validation.pdb"
  "test_path_validation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
