# Empty compiler generated dependencies file for test_misroute.
# This may be replaced when dependencies are built.
