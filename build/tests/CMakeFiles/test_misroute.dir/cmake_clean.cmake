file(REMOVE_RECURSE
  "CMakeFiles/test_misroute.dir/test_misroute.cpp.o"
  "CMakeFiles/test_misroute.dir/test_misroute.cpp.o.d"
  "test_misroute"
  "test_misroute.pdb"
  "test_misroute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
