# Empty compiler generated dependencies file for test_numbering.
# This may be replaced when dependencies are built.
