file(REMOVE_RECURSE
  "CMakeFiles/test_numbering.dir/test_numbering.cpp.o"
  "CMakeFiles/test_numbering.dir/test_numbering.cpp.o.d"
  "test_numbering"
  "test_numbering.pdb"
  "test_numbering[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numbering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
