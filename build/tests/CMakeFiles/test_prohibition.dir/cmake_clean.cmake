file(REMOVE_RECURSE
  "CMakeFiles/test_prohibition.dir/test_prohibition.cpp.o"
  "CMakeFiles/test_prohibition.dir/test_prohibition.cpp.o.d"
  "test_prohibition"
  "test_prohibition.pdb"
  "test_prohibition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prohibition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
