# Empty dependencies file for test_prohibition.
# This may be replaced when dependencies are built.
