# Empty dependencies file for test_turnmodel.
# This may be replaced when dependencies are built.
