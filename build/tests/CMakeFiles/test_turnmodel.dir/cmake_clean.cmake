file(REMOVE_RECURSE
  "CMakeFiles/test_turnmodel.dir/test_turnmodel.cpp.o"
  "CMakeFiles/test_turnmodel.dir/test_turnmodel.cpp.o.d"
  "test_turnmodel"
  "test_turnmodel.pdb"
  "test_turnmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turnmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
