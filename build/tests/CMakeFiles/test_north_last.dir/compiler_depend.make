# Empty compiler generated dependencies file for test_north_last.
# This may be replaced when dependencies are built.
