file(REMOVE_RECURSE
  "CMakeFiles/test_north_last.dir/test_north_last.cpp.o"
  "CMakeFiles/test_north_last.dir/test_north_last.cpp.o.d"
  "test_north_last"
  "test_north_last.pdb"
  "test_north_last[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_north_last.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
