file(REMOVE_RECURSE
  "CMakeFiles/test_path_enum.dir/test_path_enum.cpp.o"
  "CMakeFiles/test_path_enum.dir/test_path_enum.cpp.o.d"
  "test_path_enum"
  "test_path_enum.pdb"
  "test_path_enum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
