file(REMOVE_RECURSE
  "CMakeFiles/test_pcube.dir/test_pcube.cpp.o"
  "CMakeFiles/test_pcube.dir/test_pcube.cpp.o.d"
  "test_pcube"
  "test_pcube.pdb"
  "test_pcube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pcube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
