# Empty dependencies file for test_pcube.
# This may be replaced when dependencies are built.
