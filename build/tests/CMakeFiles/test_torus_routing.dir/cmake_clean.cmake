file(REMOVE_RECURSE
  "CMakeFiles/test_torus_routing.dir/test_torus_routing.cpp.o"
  "CMakeFiles/test_torus_routing.dir/test_torus_routing.cpp.o.d"
  "test_torus_routing"
  "test_torus_routing.pdb"
  "test_torus_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_torus_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
