# Empty dependencies file for test_torus_routing.
# This may be replaced when dependencies are built.
