file(REMOVE_RECURSE
  "CMakeFiles/test_west_first.dir/test_west_first.cpp.o"
  "CMakeFiles/test_west_first.dir/test_west_first.cpp.o.d"
  "test_west_first"
  "test_west_first.pdb"
  "test_west_first[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_west_first.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
