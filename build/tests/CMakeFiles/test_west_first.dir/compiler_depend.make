# Empty compiler generated dependencies file for test_west_first.
# This may be replaced when dependencies are built.
