file(REMOVE_RECURSE
  "CMakeFiles/test_turn_routing.dir/test_turn_routing.cpp.o"
  "CMakeFiles/test_turn_routing.dir/test_turn_routing.cpp.o.d"
  "test_turn_routing"
  "test_turn_routing.pdb"
  "test_turn_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_turn_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
