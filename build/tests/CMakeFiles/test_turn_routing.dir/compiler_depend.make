# Empty compiler generated dependencies file for test_turn_routing.
# This may be replaced when dependencies are built.
