# Empty compiler generated dependencies file for test_routing_properties.
# This may be replaced when dependencies are built.
