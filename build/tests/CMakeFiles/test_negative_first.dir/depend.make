# Empty dependencies file for test_negative_first.
# This may be replaced when dependencies are built.
