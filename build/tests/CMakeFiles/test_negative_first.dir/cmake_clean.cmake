file(REMOVE_RECURSE
  "CMakeFiles/test_negative_first.dir/test_negative_first.cpp.o"
  "CMakeFiles/test_negative_first.dir/test_negative_first.cpp.o.d"
  "test_negative_first"
  "test_negative_first.pdb"
  "test_negative_first[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_negative_first.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
