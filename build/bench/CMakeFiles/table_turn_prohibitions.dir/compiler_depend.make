# Empty compiler generated dependencies file for table_turn_prohibitions.
# This may be replaced when dependencies are built.
