file(REMOVE_RECURSE
  "CMakeFiles/table_turn_prohibitions.dir/table_turn_prohibitions.cpp.o"
  "CMakeFiles/table_turn_prohibitions.dir/table_turn_prohibitions.cpp.o.d"
  "table_turn_prohibitions"
  "table_turn_prohibitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_turn_prohibitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
