# Empty dependencies file for analysis_concentration.
# This may be replaced when dependencies are built.
