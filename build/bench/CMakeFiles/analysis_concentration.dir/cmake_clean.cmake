file(REMOVE_RECURSE
  "CMakeFiles/analysis_concentration.dir/analysis_concentration.cpp.o"
  "CMakeFiles/analysis_concentration.dir/analysis_concentration.cpp.o.d"
  "analysis_concentration"
  "analysis_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
