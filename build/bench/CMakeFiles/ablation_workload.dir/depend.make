# Empty dependencies file for ablation_workload.
# This may be replaced when dependencies are built.
