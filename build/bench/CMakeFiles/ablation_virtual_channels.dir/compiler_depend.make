# Empty compiler generated dependencies file for ablation_virtual_channels.
# This may be replaced when dependencies are built.
