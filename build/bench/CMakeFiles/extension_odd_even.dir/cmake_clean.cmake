file(REMOVE_RECURSE
  "CMakeFiles/extension_odd_even.dir/extension_odd_even.cpp.o"
  "CMakeFiles/extension_odd_even.dir/extension_odd_even.cpp.o.d"
  "extension_odd_even"
  "extension_odd_even.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_odd_even.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
