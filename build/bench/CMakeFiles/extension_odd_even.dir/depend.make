# Empty dependencies file for extension_odd_even.
# This may be replaced when dependencies are built.
