file(REMOVE_RECURSE
  "CMakeFiles/micro_turnnet.dir/micro_turnnet.cpp.o"
  "CMakeFiles/micro_turnnet.dir/micro_turnnet.cpp.o.d"
  "micro_turnnet"
  "micro_turnnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_turnnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
