# Empty compiler generated dependencies file for micro_turnnet.
# This may be replaced when dependencies are built.
