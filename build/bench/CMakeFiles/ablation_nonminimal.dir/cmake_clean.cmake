file(REMOVE_RECURSE
  "CMakeFiles/ablation_nonminimal.dir/ablation_nonminimal.cpp.o"
  "CMakeFiles/ablation_nonminimal.dir/ablation_nonminimal.cpp.o.d"
  "ablation_nonminimal"
  "ablation_nonminimal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nonminimal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
