# Empty compiler generated dependencies file for ablation_nonminimal.
# This may be replaced when dependencies are built.
