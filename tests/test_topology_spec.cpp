/**
 * @file
 * TopologySpec / TopologyRegistry tests: the designated-initializer
 * construction surface, its fail-fast validation (every problem
 * listed, mirroring SimConfig::validate()), the compact text grammar
 * behind every --topology flag, and the (family, VC-scheme) pairing
 * rules.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "turnnet/topology/spec.hpp"
#include "turnnet/topology/topology_registry.hpp"

namespace turnnet {
namespace {

bool
mentions(const std::vector<std::string> &errors, const char *needle)
{
    return std::any_of(errors.begin(), errors.end(),
                       [&](const std::string &e) {
                           return e.find(needle) !=
                                  std::string::npos;
                       });
}

TEST(TopologySpec, ValidSpecsBuildEveryFamily)
{
    EXPECT_EQ(makeTopology({.family = "mesh", .radices = {4, 4}})
                  ->numNodes(),
              16);
    EXPECT_EQ(makeTopology({.family = "torus", .radices = {4, 4}})
                  ->numNodes(),
              16);
    EXPECT_EQ(makeTopology({.family = "hypercube", .dims = 4})
                  ->numNodes(),
              16);
    const auto df = makeTopology({.family = "dragonfly",
                                  .group_routers = 4,
                                  .group_terminals = 2,
                                  .global_links = 2});
    EXPECT_EQ(df->numNodes(), 36); // g = 4*2+1 = 9 groups of 4
    EXPECT_EQ(df->numPorts(), 5);  // 3 local + 2 global
    const auto ft = makeTopology(
        {.family = "fat-tree", .arity = 2, .levels = 3});
    EXPECT_EQ(ft->numNodes(), 20); // 8 terminals + 3*4 switches
    EXPECT_EQ(ft->numEndpoints(), 8);
}

TEST(TopologySpec, ValidateListsEveryProblemAtOnce)
{
    // One spec, two independent problems: both must be reported.
    const TopologySpec spec{.family = "dragonfly",
                            .group_routers = 0,
                            .group_terminals = 0,
                            .global_links = 1};
    const std::vector<std::string> errors =
        TopologyRegistry::instance().validate(spec);
    EXPECT_EQ(errors.size(), 2u);
    EXPECT_TRUE(mentions(errors, "group size"));
    EXPECT_TRUE(mentions(errors, "terminal per router"));
}

TEST(TopologySpec, RejectsBadShapes)
{
    const TopologyRegistry &reg = TopologyRegistry::instance();
    EXPECT_TRUE(mentions(
        reg.validate({.family = "mesh", .radices = {1, 4}}),
        "below the minimum of 2"));
    EXPECT_TRUE(mentions(
        reg.validate({.family = "torus", .radices = {2, 4}}),
        "below the minimum of 3"));
    EXPECT_TRUE(
        mentions(reg.validate({.family = "hypercube", .dims = 0}),
                 "outside 1"));
    EXPECT_TRUE(mentions(
        reg.validate({.family = "fat-tree", .arity = 1,
                      .levels = 2}),
        "arity 1 is outside 2"));
    EXPECT_TRUE(mentions(
        reg.validate({.family = "fat-tree", .arity = 2,
                      .levels = 0}),
        "height 0 is below the minimum"));
    EXPECT_TRUE(mentions(reg.validate({.family = "banyan"}),
                         "unknown topology family"));
}

TEST(TopologySpec, RejectsVcSchemeMismatches)
{
    const TopologyRegistry &reg = TopologyRegistry::instance();
    // dateline is a torus scheme; it cannot ride a mesh.
    EXPECT_TRUE(mentions(reg.validate({.family = "mesh",
                                       .radices = {4, 4},
                                       .vc_scheme = "dateline"}),
                         "does not apply to the mesh family"));
    // double-y is mesh-only and 2D-only.
    EXPECT_TRUE(mentions(reg.validate({.family = "torus",
                                       .radices = {4, 4},
                                       .vc_scheme = "double-y"}),
                         "does not apply to the torus family"));
    EXPECT_TRUE(mentions(reg.validate({.family = "mesh",
                                       .radices = {4, 4, 4},
                                       .vc_scheme = "double-y"}),
                         "2D-only"));
    // The dragonfly schemes belong to the dragonfly family.
    EXPECT_TRUE(
        mentions(reg.validate({.family = "mesh",
                               .radices = {4, 4},
                               .vc_scheme = "dragonfly-min"}),
                 "does not apply to the mesh family"));
    EXPECT_TRUE(reg.validate({.family = "dragonfly",
                              .group_routers = 4,
                              .group_terminals = 2,
                              .global_links = 2,
                              .vc_scheme = "dragonfly-ugal"})
                    .empty());
}

TEST(TopologySpecDeath, MakeTopologyIsFatalOnInvalidSpecs)
{
    EXPECT_DEATH(
        makeTopology({.family = "dragonfly",
                      .group_routers = 0,
                      .group_terminals = 1,
                      .global_links = 1}),
        "group size");
    EXPECT_DEATH(makeTopology({.family = "banyan"}),
                 "unknown topology family");
    EXPECT_DEATH(makeTopology({.family = "mesh",
                               .radices = {4, 4},
                               .vc_scheme = "dateline"}),
                 "does not apply");
}

TEST(TopologyRegistry, ParsesTheCompactGrammar)
{
    const TopologyRegistry &reg = TopologyRegistry::instance();
    const TopologySpec mesh = reg.parseSpec("mesh(8x8)");
    EXPECT_EQ(mesh.family, "mesh");
    EXPECT_EQ(mesh.radices, (std::vector<int>{8, 8}));

    const TopologySpec torus = reg.parseSpec("torus(4x4x4)");
    EXPECT_EQ(torus.family, "torus");
    EXPECT_EQ(torus.radices, (std::vector<int>{4, 4, 4}));

    EXPECT_EQ(reg.parseSpec("hypercube(6)").dims, 6);

    const TopologySpec df = reg.parseSpec("dragonfly(4,2,2)");
    EXPECT_EQ(df.family, "dragonfly");
    EXPECT_EQ(df.group_routers, 4);
    EXPECT_EQ(df.group_terminals, 2);
    EXPECT_EQ(df.global_links, 2);

    const TopologySpec ft = reg.parseSpec("fat-tree(2,3)");
    EXPECT_EQ(ft.family, "fat-tree");
    EXPECT_EQ(ft.arity, 2);
    EXPECT_EQ(ft.levels, 3);

    // The alias resolves to the canonical family name.
    EXPECT_EQ(reg.parseSpec("fattree(2,2)").family, "fat-tree");
}

TEST(TopologyRegistry, FindAndUsage)
{
    const TopologyRegistry &reg = TopologyRegistry::instance();
    EXPECT_EQ(reg.all().size(), 5u);
    EXPECT_NE(reg.find("mesh"), nullptr);
    EXPECT_NE(reg.find("fattree"), nullptr);
    EXPECT_EQ(reg.find("fattree"), reg.find("fat-tree"));
    EXPECT_EQ(reg.find("banyan"), nullptr);
    const std::string usage = reg.usageNames();
    for (const TopologyDescriptor &d : reg.all())
        EXPECT_NE(usage.find(d.family), std::string::npos);
}

TEST(TopologyRegistry, BuildFromTextNamesTheFabric)
{
    const TopologyRegistry &reg = TopologyRegistry::instance();
    EXPECT_EQ(reg.build("mesh(4x4)")->name(), "mesh(4x4)");
    EXPECT_EQ(reg.build("dragonfly(2,1,1)")->numNodes(), 6);
    EXPECT_EQ(reg.build("fat-tree(2,2)")->numEndpoints(), 4);
}

TEST(TopologyRegistryDeath, MalformedTextIsFatal)
{
    const TopologyRegistry &reg = TopologyRegistry::instance();
    EXPECT_DEATH(reg.parseSpec("mesh"), "malformed topology");
    EXPECT_DEATH(reg.parseSpec("mesh(8x8"), "malformed topology");
    EXPECT_DEATH(reg.parseSpec("banyan(4)"),
                 "unknown topology family");
    EXPECT_DEATH(reg.parseSpec("mesh(0x4)"),
                 "malformed arguments");
    EXPECT_DEATH(reg.parseSpec("dragonfly(4,2)"),
                 "malformed arguments");
    EXPECT_DEATH(reg.parseSpec("fat-tree(2,3,4)"),
                 "malformed arguments");
}

} // namespace
} // namespace turnnet
