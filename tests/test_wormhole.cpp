/**
 * @file
 * Wormhole-switching semantics: worms hold channels end to end,
 * blocked worms stall in place, chains of full single-flit buffers
 * advance together, and adaptive routing exploits free channels
 * that nonadaptive routing cannot.
 */

#include <gtest/gtest.h>

#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

SimConfig
scriptedConfig()
{
    SimConfig config;
    config.load = 0.0;
    config.watchdogCycles = 5000;
    return config;
}

TEST(Wormhole, WormSpansThePathWhileBlocked)
{
    // A long packet whose header is blocked keeps its flits spread
    // along the path, holding every reserved channel.
    const Mesh mesh(4, 4);
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  scriptedConfig());

    // Blocker: occupies the east channel out of (2,0) for a while.
    sim.injectMessage(mesh.nodeOf({2, 0}), mesh.nodeOf({3, 0}), 60);
    // Victim: same channel, one hop behind.
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({3, 0}), 60);

    // After a few cycles the victim's header is parked at (2,0) and
    // its flits occupy the buffers back to the source.
    for (int i = 0; i < 12; ++i)
        sim.step();
    const Network &net = sim.network();
    // Victim head sits in the channel input at (2,0) coming from
    // (1,0).
    const ChannelId into_20 = mesh.channelFrom(
        mesh.nodeOf({1, 0}), Direction::positive(0));
    const InputUnit &parked = net.input(net.channelInput(into_20));
    ASSERT_FALSE(parked.buffer().empty());
    EXPECT_EQ(parked.assignedOutput(), kNoUnit)
        << "victim header should be waiting for the owned channel";
    // And the upstream buffer toward the source is also full.
    const ChannelId into_10 = mesh.channelFrom(
        mesh.nodeOf({0, 0}), Direction::positive(0));
    EXPECT_TRUE(net.input(net.channelInput(into_10)).buffer().full());

    ASSERT_TRUE(sim.runUntilIdle(5000));
    EXPECT_EQ(sim.flitsDelivered(), 120u);
}

TEST(Wormhole, SingleFlitBuffersStillMoveOneFlitPerCycle)
{
    // The chain-advance rule lets a worm of full one-flit buffers
    // progress every cycle (not every other cycle): uncontended
    // latency equals L + D exactly, which only holds if there are
    // no pipeline bubbles.
    const Mesh mesh(8, 8);
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  scriptedConfig());
    Cycle done = 0;
    sim.onDelivered = [&](const PacketInfo &, Cycle at) {
        done = at;
    };
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({7, 0}), 30);
    ASSERT_TRUE(sim.runUntilIdle(1000));
    EXPECT_EQ(done, 37u);
}

TEST(Wormhole, DeeperBuffersDecoupleBlockedWorms)
{
    // With 4-flit buffers a blocked worm compresses into fewer
    // routers; the victim clears the shared channel region sooner
    // after the blocker finishes. We just verify both complete and
    // the deeper-buffer run is no slower.
    const Mesh mesh(4, 4);
    auto run = [&](std::size_t depth) {
        SimConfig config = scriptedConfig();
        config.bufferDepth = depth;
        Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);
        Cycle last = 0;
        sim.onDelivered = [&](const PacketInfo &, Cycle at) {
            last = std::max(last, at);
        };
        sim.injectMessage(mesh.nodeOf({1, 0}), mesh.nodeOf({3, 0}),
                          40);
        sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({3, 1}),
                          40);
        EXPECT_TRUE(sim.runUntilIdle(5000));
        return last;
    };
    const Cycle shallow = run(1);
    const Cycle deep = run(4);
    EXPECT_LE(deep, shallow);
}

TEST(Wormhole, AdaptiveRoutingAvoidsABlockedChannel)
{
    // Blocker X holds the east channel out of (1,0) for ~60 cycles.
    // Victim Y: (0,0) -> (2,1). xy routing must wait behind X;
    // west-first adapts north at (1,0) and slips past.
    const Mesh mesh(4, 4);
    auto run = [&](const char *alg) {
        Simulator sim(mesh, makeRouting({.name = alg, .dims = 2}), nullptr,
                      scriptedConfig());
        Cycle victim_done = 0;
        PacketId victim = 0;
        sim.onDelivered = [&](const PacketInfo &info, Cycle at) {
            if (info.id == victim)
                victim_done = at;
        };
        sim.injectMessage(mesh.nodeOf({1, 0}), mesh.nodeOf({3, 0}),
                          60);
        victim = sim.injectMessage(mesh.nodeOf({0, 0}),
                                   mesh.nodeOf({2, 1}), 10);
        EXPECT_TRUE(sim.runUntilIdle(5000));
        return victim_done;
    };
    const Cycle with_xy = run("xy");
    const Cycle with_wf = run("west-first");
    EXPECT_LT(with_wf, with_xy / 2)
        << "adaptive west-first should slip past the blocker";
    // West-first finishes in near-uncontended time (distance 3,
    // length 10, plus the one-cycle adaptive detour decision).
    EXPECT_LE(with_wf, 20u);
}

TEST(Wormhole, ChannelsAreReleasedByTheTail)
{
    // After a worm fully passes, the channel serves the next packet
    // with no residual state.
    const Mesh mesh(3, 3);
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  scriptedConfig());
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({2, 0}), 5);
    ASSERT_TRUE(sim.runUntilIdle(1000));
    const Network &net = sim.network();
    for (UnitId o = 0; o < static_cast<UnitId>(net.numOutputs());
         ++o) {
        EXPECT_TRUE(net.output(o).free());
    }
    for (UnitId i = 0; i < static_cast<UnitId>(net.numInputs());
         ++i) {
        EXPECT_TRUE(net.input(i).buffer().empty());
        EXPECT_EQ(net.input(i).assignedOutput(), kNoUnit);
    }
}

TEST(Wormhole, EjectionConsumesOneFlitPerCycle)
{
    // Two packets to the same destination must share the single
    // ejection channel: total drain time is serialized.
    const Mesh mesh(3, 3);
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  scriptedConfig());
    std::vector<Cycle> done;
    sim.onDelivered = [&](const PacketInfo &, Cycle at) {
        done.push_back(at);
    };
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({1, 1}), 20);
    sim.injectMessage(mesh.nodeOf({2, 2}), mesh.nodeOf({1, 1}), 20);
    ASSERT_TRUE(sim.runUntilIdle(2000));
    ASSERT_EQ(done.size(), 2u);
    // First packet: L + D = 22. Second waited for the ejection
    // channel: at least 20 cycles later than its uncontended time.
    EXPECT_EQ(done[0], 22u);
    EXPECT_GE(done[1], 40u);
}

} // namespace
} // namespace turnnet
