/**
 * @file
 * The causal-ordering battery for trace replay: on every cycle
 * engine, no record's head flit may enter the fabric before every
 * predecessor resolved — delivered predecessors strictly earlier
 * (their tail left the network on an earlier cycle), lost
 * predecessors no later than the successor's emission. Verified two
 * ways at once: against the replay source's own bookkeeping and
 * against the independent flit-level event trace. The same battery
 * runs under mid-run fault activation, where dropped predecessors
 * must release (not wedge) their successors and the replay must
 * still drain.
 */

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "turnnet/network/engine.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/fault.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/workload/tracegen.hpp"

namespace turnnet {
namespace {

/** One engine configuration of the replay matrix. */
struct EngineCase
{
    SimEngine engine;
    unsigned shards;
};

/** Every cycle engine, with the sharded engine at an even and an
 *  uneven (16-node mesh) worker split. */
const EngineCase kEngineCases[] = {{SimEngine::Reference, 0},
                                   {SimEngine::Fast, 0},
                                   {SimEngine::Batch, 0},
                                   {SimEngine::Sharded, 2},
                                   {SimEngine::Sharded, 7}};

std::string
caseName(const EngineCase &c)
{
    std::string name = EngineRegistry::instance().at(c.engine).name;
    if (c.shards != 0)
        name += "_s" + std::to_string(c.shards);
    return name;
}

SimConfig
replayConfig(TraceWorkloadPtr trace, const EngineCase &c)
{
    SimConfig config;
    config.traceWorkload = std::move(trace);
    config.warmupCycles = 0;
    config.measureCycles = 20000; // hard cap for a wedged replay
    config.drainCycles = 0;
    config.seed = 1;
    config.engine = c.engine;
    config.shards = c.shards;
    config.trace.events = true;
    config.trace.eventCapacity = std::size_t{1} << 17;
    return config;
}

constexpr Cycle kNever = TraceReplaySource::kNever;

/**
 * The invariant itself, checked record by record:
 *  - a Delivered predecessor resolved strictly before the successor
 *    was emitted (tail consumed at cycle C => successor eligible no
 *    earlier than the C+1 generation phase), and the successor's
 *    Inject event postdates the predecessor's last Deliver event;
 *  - a lost predecessor (Dropped/Unreachable) resolved no later
 *    than the successor's emission — loss releases successors in
 *    the same generation pass, it never wedges them.
 */
void
expectCausalOrder(const Simulator &sim)
{
    const TraceReplaySource *replay = sim.replay();
    ASSERT_NE(replay, nullptr);
    ASSERT_NE(sim.trace(), nullptr);
    // The cross-check needs the full event history.
    ASSERT_EQ(sim.trace()->dropped(), 0u)
        << "event ring too small for this replay";

    std::unordered_map<PacketId, Cycle> first_inject;
    std::unordered_map<PacketId, Cycle> last_deliver;
    for (const TraceEvent &e : sim.trace()->events()) {
        if (e.type == TraceEventType::Inject)
            first_inject.emplace(e.packet, e.cycle);
        if (e.type == TraceEventType::Deliver)
            last_deliver[e.packet] = e.cycle;
    }

    const std::vector<TraceRecord> &records =
        replay->trace().records();
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (replay->emittedAt(i) == kNever)
            continue; // never became servable; nothing injected
        for (const std::uint64_t dep : records[i].deps) {
            const std::size_t d = replay->trace().indexOfId(dep);
            ASSERT_NE(replay->resolvedAt(d), kNever)
                << "record " << records[i].id
                << " emitted before predecessor " << dep
                << " resolved";
            if (replay->fate(d) ==
                TraceReplaySource::RecordFate::Delivered) {
                EXPECT_GT(replay->emittedAt(i),
                          replay->resolvedAt(d))
                    << "record " << records[i].id
                    << " emitted in the same cycle its "
                       "predecessor's tail delivered";
                // Independent witness: the flit-level events.
                const PacketId succ = replay->packetOf(i);
                const PacketId pred = replay->packetOf(d);
                ASSERT_NE(pred, 0u);
                ASSERT_TRUE(last_deliver.count(pred));
                if (succ != 0 && first_inject.count(succ)) {
                    EXPECT_GT(first_inject.at(succ),
                              last_deliver.at(pred))
                        << "packet of record " << records[i].id
                        << " injected before predecessor " << dep
                        << "'s tail delivered";
                }
            } else {
                EXPECT_GE(replay->emittedAt(i),
                          replay->resolvedAt(d));
            }
        }
    }
}

TEST(Causal, EveryKernelOnEveryEngine)
{
    const Mesh mesh(4, 4);
    const TraceWorkloadPtr kernels[] = {
        makeStencilTrace({.nx = 4, .ny = 4, .iterations = 2}),
        makeAllReduceTrace({.endpoints = 16, .arity = 2}),
        makeFftTrace({.endpoints = 16}),
    };
    for (const TraceWorkloadPtr &trace : kernels) {
        Cycle first_makespan = 0;
        bool have_first = false;
        for (const EngineCase &c : kEngineCases) {
            SCOPED_TRACE(trace->name() + " on " + caseName(c));
            Simulator sim(mesh, makeVcRouting({.name = "xy"}),
                          nullptr, replayConfig(trace, c));
            const SimResult result = sim.run();

            EXPECT_TRUE(result.replayComplete);
            EXPECT_FALSE(result.deadlocked);
            EXPECT_GT(result.makespanCycles, 0u);
            EXPECT_EQ(result.makespanCycles, sim.now());
            ASSERT_NE(sim.replay(), nullptr);
            EXPECT_TRUE(sim.replay()->allResolved());
            EXPECT_EQ(sim.replay()->deliveredCount(),
                      trace->records().size());
            EXPECT_EQ(sim.packetsDelivered(),
                      trace->records().size());
            EXPECT_EQ(sim.packetsDropped(), 0u);
            EXPECT_EQ(sim.packetsUnreachable(), 0u);
            expectCausalOrder(sim);

            // All engines replay the identical trajectory.
            if (!have_first) {
                first_makespan = result.makespanCycles;
                have_first = true;
            } else {
                EXPECT_EQ(result.makespanCycles, first_makespan);
            }
        }
    }
}

TEST(Causal, LostPredecessorsReleaseSuccessorsUnderFaults)
{
    // A router dies mid-replay: records to or from the dead rank
    // resolve as losses (purged in flight, or unreachable at
    // emission), and their successors must inject anyway — the DAG
    // drains to completion with the causal order intact.
    const Mesh mesh(4, 4);
    const NodeId dead = mesh.nodeOf({1, 1});
    FaultSet faults;
    faults.failNode(mesh, dead);
    const TraceWorkloadPtr trace =
        makeStencilTrace({.nx = 4, .ny = 4, .iterations = 3});

    Cycle first_makespan = 0;
    std::vector<TraceReplaySource::RecordFate> first_fates;
    for (const EngineCase &c : kEngineCases) {
        SCOPED_TRACE(caseName(c));
        SimConfig config = replayConfig(trace, c);
        config.faults = faults;
        config.faultCycle = 55;
        Simulator sim(mesh,
                      makeVcRouting({.name = "negative-first-ft",
                                     .fault_set = faults}),
                      nullptr, config);
        const SimResult result = sim.run();

        // Losses happened, yet the replay still drained.
        EXPECT_TRUE(result.replayComplete);
        EXPECT_TRUE(sim.idle());
        ASSERT_NE(sim.replay(), nullptr);
        EXPECT_TRUE(sim.replay()->allResolved());
        EXPECT_GT(sim.packetsUnreachable(), 0u);
        EXPECT_LT(sim.replay()->deliveredCount(),
                  trace->records().size());
        expectCausalOrder(sim);

        std::vector<TraceReplaySource::RecordFate> fates;
        bool lossy_pred_released_successor = false;
        for (std::size_t i = 0; i < trace->records().size(); ++i) {
            const auto fate = sim.replay()->fate(i);
            ASSERT_NE(fate, TraceReplaySource::RecordFate::Pending)
                << "record " << trace->records()[i].id;
            fates.push_back(fate);
            if (fate != TraceReplaySource::RecordFate::Delivered)
                continue;
            for (const std::uint64_t dep :
                 trace->records()[i].deps) {
                const std::size_t d = trace->indexOfId(dep);
                if (sim.replay()->fate(d) !=
                    TraceReplaySource::RecordFate::Delivered)
                    lossy_pred_released_successor = true;
            }
        }
        // The non-wedging semantics in action: at least one
        // delivered record rode over a lost predecessor.
        EXPECT_TRUE(lossy_pred_released_successor);
        // Ranks with a surviving peer keep exchanging: losses stay
        // confined to the dead rank's neighborhood.
        EXPECT_GT(sim.replay()->deliveredCount(),
                  trace->records().size() / 2);

        // Fault handling is part of the replayed trajectory: every
        // engine agrees on makespan and per-record fates.
        if (first_fates.empty()) {
            first_makespan = result.makespanCycles;
            first_fates = fates;
        } else {
            EXPECT_EQ(result.makespanCycles, first_makespan);
            EXPECT_EQ(fates, first_fates);
        }
    }
}

TEST(Causal, WedgedReplayIsCappedNotHung)
{
    // A cap far below the makespan: run() must return (not spin),
    // flag the replay incomplete, and report the cap as the lower
    // bound on makespan.
    const Mesh mesh(4, 4);
    const TraceWorkloadPtr trace =
        makeStencilTrace({.nx = 4, .ny = 4, .iterations = 2});
    for (const EngineCase &c : kEngineCases) {
        SCOPED_TRACE(caseName(c));
        SimConfig config = replayConfig(trace, c);
        config.measureCycles = 12;
        Simulator sim(mesh, makeVcRouting({.name = "xy"}), nullptr,
                      config);
        const SimResult result = sim.run();
        EXPECT_FALSE(result.replayComplete);
        EXPECT_EQ(result.makespanCycles, 12u);
        ASSERT_NE(sim.replay(), nullptr);
        EXPECT_FALSE(sim.replay()->allResolved());
        EXPECT_GT(sim.replay()->resolvedCount(), 0u);
    }
}

TEST(Causal, ReplayRejectsATooSmallFabric)
{
    // A 16-rank trace cannot bind to a 9-endpoint mesh; the replay
    // source refuses at construction rather than aliasing ranks.
    const Mesh small(3, 3);
    SimConfig config;
    config.traceWorkload = makeFftTrace({.endpoints = 16});
    EXPECT_DEATH(Simulator(small, makeVcRouting({.name = "xy"}),
                           nullptr, config),
                 "endpoints");
}

} // namespace
} // namespace turnnet
