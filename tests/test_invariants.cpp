/**
 * @file
 * Property tests asserted every cycle of randomized runs, on both
 * engines:
 *
 *  - flit conservation: every flit ever created is delivered,
 *    dropped by a fault purge, buffered in the fabric, or still
 *    waiting in a source queue — no cycle may leak or mint flits;
 *  - per-worm delivery order: each packet's flits arrive in
 *    sequence order with no gaps, header first, tail last, and
 *    nothing after the tail.
 *
 * The differential oracle proves the engines identical to each
 * other; these properties hold each engine to the physics the
 * simulation claims to model, so a bug shared by both engines (or
 * present in the reference itself) still has to get past them.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "turnnet/network/engine.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

/** Per-packet delivery-order tracker fed by onFlitDelivered. */
class WormOrderChecker
{
  public:
    void
    attach(Simulator &sim)
    {
        sim.onFlitDelivered = [this](const Flit &flit, Cycle now) {
            observe(flit, now);
        };
    }

    void
    observe(const Flit &flit, Cycle now)
    {
        ++flitsSeen_;
        auto [it, fresh] = nextSeq_.emplace(flit.packet, 0);
        EXPECT_EQ(flit.seq, it->second)
            << "packet " << flit.packet
            << " delivered out of order or with a gap at cycle "
            << now;
        EXPECT_EQ(flit.head, flit.seq == 0)
            << "packet " << flit.packet << " flit " << flit.seq;
        (void)fresh;
        ++it->second;
        if (flit.tail) {
            finished_.push_back(flit.packet);
            nextSeq_.erase(it);
        }
    }

    /** Nothing may arrive for a packet after its tail. */
    void
    expectNoResurrections() const
    {
        for (const PacketId id : finished_)
            EXPECT_EQ(nextSeq_.count(id), 0u)
                << "packet " << id << " delivered past its tail";
    }

    std::uint64_t flitsSeen() const { return flitsSeen_; }
    std::size_t wormsFinished() const { return finished_.size(); }

  private:
    std::map<PacketId, std::uint32_t> nextSeq_;
    std::vector<PacketId> finished_;
    std::uint64_t flitsSeen_ = 0;
};

/** Engine configurations every invariant sweep runs under: the
 *  three serial engines plus the sharded engine at an even and an
 *  uneven shard count (7 does not divide the 16- and 25-node
 *  fabrics used here, exercising the boundary merges). */
struct EngineCase
{
    SimEngine engine;
    unsigned shards;
};

constexpr EngineCase kEngineCases[] = {{SimEngine::Reference, 0},
                                       {SimEngine::Fast, 0},
                                       {SimEngine::Batch, 0},
                                       {SimEngine::Sharded, 2},
                                       {SimEngine::Sharded, 7}};

std::string
engineCaseName(const EngineCase &c)
{
    std::string name = EngineRegistry::instance().at(c.engine).name;
    if (c.shards != 0)
        name += "/s" + std::to_string(c.shards);
    return name;
}

/** Conservation ledger checked after every cycle. */
void
expectConserved(const Simulator &sim)
{
    ASSERT_EQ(sim.flitsCreated(),
              sim.flitsDelivered() + sim.flitsDropped() +
                  sim.flitsInNetwork() + sim.flitsQueued())
        << "flit leak at cycle " << sim.now();
}

/** One randomized-configuration run, invariants asserted per
 *  cycle. */
void
runInvariantSweep(const Topology &topo, const RoutingPtr &routing,
                  const TrafficPtr &traffic, SimConfig config,
                  EngineCase engine, Cycle cycles)
{
    config.engine = engine.engine;
    config.shards = engine.shards;
    Simulator sim(topo, routing, traffic, config);
    WormOrderChecker order;
    order.attach(sim);
    for (Cycle c = 0; c < cycles; ++c) {
        sim.step();
        expectConserved(sim);
    }
    // Let in-flight worms finish so the order checker sees whole
    // packets, then re-check the drained ledger.
    sim.runUntilIdle(20000);
    expectConserved(sim);
    order.expectNoResurrections();
    EXPECT_EQ(order.flitsSeen(), sim.flitsDelivered());
    EXPECT_EQ(order.wormsFinished(), sim.packetsDelivered());
    EXPECT_GT(sim.packetsDelivered(), 0u);
}

TEST(Invariants, RandomizedMeshSweepsBothEngines)
{
    const Mesh mesh(5, 5);
    const TrafficPtr uniform = makeTraffic("uniform", mesh);
    const TrafficPtr transpose = makeTraffic("transpose", mesh);
    struct Case
    {
        const char *algorithm;
        const TrafficPtr &traffic;
        double load;
        std::size_t depth;
        std::uint64_t seed;
    };
    const Case cases[] = {
        {"xy", uniform, 0.10, 1, 11},
        {"west-first", transpose, 0.25, 1, 22},
        {"north-last", uniform, 0.30, 2, 33},
        {"negative-first", transpose, 0.15, 4, 44},
        {"odd-even", uniform, 0.35, 1, 55},
    };
    for (const Case &c : cases) {
        for (const EngineCase &engine : kEngineCases) {
            SCOPED_TRACE(std::string(c.algorithm) + " seed " +
                         std::to_string(c.seed) + " engine " +
                         engineCaseName(engine));
            SimConfig config;
            config.load = c.load;
            config.bufferDepth = c.depth;
            config.seed = c.seed;
            runInvariantSweep(mesh,
                              makeRouting({.name = c.algorithm}),
                              c.traffic, config, engine, 800);
        }
    }
}

TEST(Invariants, TorusSweepBothEngines)
{
    const Torus torus(std::vector<int>{4, 4});
    for (const EngineCase &engine : kEngineCases) {
        SCOPED_TRACE(engineCaseName(engine));
        SimConfig config;
        config.load = 0.15;
        config.seed = 7;
        runInvariantSweep(torus,
                          makeRouting({.name = "nf-torus"}),
                          makeTraffic("uniform", torus), config,
                          engine, 800);
    }
}

TEST(Invariants, ConservationHoldsThroughFaultPurges)
{
    // Fault activation is the only path that mints "dropped" flits;
    // the ledger must balance through the purge cycle itself and
    // every cycle after.
    const Mesh mesh(5, 5);
    const FaultSet faults = FaultSet::randomLinks(mesh, 3, 99);
    for (const EngineCase &engine : kEngineCases) {
        SCOPED_TRACE(engineCaseName(engine));
        SimConfig config;
        config.load = 0.2;
        config.seed = 13;
        config.faults = faults;
        config.faultCycle = 300;
        config.engine = engine.engine;
        config.shards = engine.shards;
        Simulator sim(mesh,
                      makeRouting({.name = "negative-first-ft",
                                   .fault_set = faults}),
                      makeTraffic("uniform", mesh), config);
        for (Cycle c = 0; c < 900; ++c) {
            sim.step();
            expectConserved(sim);
        }
        EXPECT_TRUE(sim.faultsActive());
        EXPECT_GT(sim.flitsDelivered(), 0u);
    }
}

TEST(Invariants, ScriptedWormOrderAcrossContention)
{
    // Deliberate contention: three long worms share the column into
    // the same destination; whatever the interleaving, each packet
    // must still arrive in order and gap-free.
    const Mesh mesh(4, 4);
    for (const EngineCase &engine : kEngineCases) {
        SCOPED_TRACE(engineCaseName(engine));
        SimConfig config;
        config.load = 0.0;
        config.engine = engine.engine;
        config.shards = engine.shards;
        Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                      config);
        WormOrderChecker order;
        order.attach(sim);
        sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({3, 3}),
                          12);
        sim.injectMessage(mesh.nodeOf({0, 1}), mesh.nodeOf({3, 3}),
                          12);
        sim.injectMessage(mesh.nodeOf({0, 2}), mesh.nodeOf({3, 3}),
                          12);
        ASSERT_TRUE(sim.runUntilIdle(2000));
        expectConserved(sim);
        order.expectNoResurrections();
        EXPECT_EQ(order.wormsFinished(), 3u);
        EXPECT_EQ(order.flitsSeen(), 36u);
    }
}

} // namespace
} // namespace turnnet
