/**
 * @file
 * Degree-of-adaptiveness tests (Sections 3.4 and 4.1): the closed
 * forms match exhaustive enumeration, and the paper's aggregate
 * claims hold — S_p = 1 for at least half the pairs, yet the mean
 * S_p/S_f stays above 1/2 in 2D and above 1/2^(n-1) in general.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

TEST(Multinomial, BasicValues)
{
    EXPECT_EQ(multinomialPaths({}), 1.0);
    EXPECT_EQ(multinomialPaths({5}), 1.0);
    EXPECT_EQ(multinomialPaths({2, 2}), 6.0);
    EXPECT_EQ(multinomialPaths({3, 1}), 4.0);
    EXPECT_EQ(multinomialPaths({1, 1, 1}), 6.0);
    EXPECT_EQ(multinomialPaths({2, 1, 1}), 12.0);
    EXPECT_EQ(multinomialPaths({15, 15}), 155117520.0);
}

TEST(FullyAdaptiveCount, IsTheBinomialIn2D)
{
    const Mesh mesh(8, 8);
    // (dx, dy) = (3, 2) -> C(5,2) = 10.
    EXPECT_EQ(pathsFullyAdaptive(mesh, mesh.nodeOf({1, 1}),
                                 mesh.nodeOf({4, 3})),
              10.0);
    // Straight line -> 1.
    EXPECT_EQ(pathsFullyAdaptive(mesh, mesh.nodeOf({0, 0}),
                                 mesh.nodeOf({0, 7})),
              1.0);
}

TEST(FullyAdaptiveCount, MatchesEnumeration)
{
    const Mesh mesh(5, 5);
    const RoutingPtr adaptive = makeRouting({.name = "fully-adaptive"});
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(countPaths(mesh, *adaptive, s, d),
                      pathsFullyAdaptive(mesh, s, d));
        }
    }
}

TEST(ClosedForms, MatchEnumerationForAllPartialAlgorithms)
{
    const Mesh mesh(6, 6);
    struct Entry
    {
        const char *name;
        double (*formula)(const Topology &, NodeId, NodeId);
    };
    const Entry entries[] = {
        {"west-first", &pathsWestFirst},
        {"north-last", &pathsNorthLast},
        {"negative-first", &pathsNegativeFirst},
    };
    for (const Entry &e : entries) {
        const RoutingPtr routing = makeRouting({.name = e.name, .dims = 2});
        for (NodeId s = 0; s < mesh.numNodes(); ++s) {
            for (NodeId d = 0; d < mesh.numNodes(); ++d) {
                if (s == d)
                    continue;
                EXPECT_EQ(countPaths(mesh, *routing, s, d),
                          e.formula(mesh, s, d))
                    << e.name << " " << s << " -> " << d;
            }
        }
    }
}

TEST(ClosedForms, XyAlwaysHasExactlyOnePath)
{
    const Mesh mesh(5, 5);
    const RoutingPtr xy = makeRouting({.name = "xy"});
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(countPaths(mesh, *xy, s, d), 1.0);
        }
    }
}

TEST(Section34, HalfThePairsHaveASinglePath)
{
    // "S_p = 1 for at least half of the source-destination pairs."
    const Mesh mesh(8, 8);
    for (const char *alg :
         {"west-first", "north-last", "negative-first"}) {
        const auto summary =
            summarizeAdaptiveness(mesh, *makeRouting({.name = alg, .dims = 2}));
        EXPECT_GE(summary.singlePathFraction, 0.5) << alg;
    }
}

TEST(Section34, MeanRatioExceedsOneHalfIn2D)
{
    // "Averaged across all source-destination pairs,
    //  S_p / S_f > 1/2."
    const Mesh mesh(8, 8);
    for (const char *alg :
         {"west-first", "north-last", "negative-first"}) {
        const auto summary =
            summarizeAdaptiveness(mesh, *makeRouting({.name = alg, .dims = 2}));
        EXPECT_GT(summary.meanRatio, 0.5) << alg;
        EXPECT_LT(summary.meanRatio, 1.0) << alg;
    }
}

TEST(Section41, MeanRatioExceedsHalfToTheNMinus1)
{
    // n-dimensional claim: mean S_p/S_f > 1/2^(n-1).
    const Mesh mesh3({4, 4, 4});
    for (const char *alg : {"negative-first", "abonf", "abopl"}) {
        const auto summary =
            summarizeAdaptiveness(mesh3, *makeRouting({.name = alg, .dims = 3}));
        EXPECT_GT(summary.meanRatio, 1.0 / 4.0) << alg;
    }
    const Hypercube cube(5);
    const auto pc = summarizeAdaptiveness(cube, *makeRouting({.name = "p-cube", .dims = 5}));
    EXPECT_GT(pc.meanRatio, 1.0 / 16.0);
}

TEST(Section41, AdaptivenessDropsWithDimension)
{
    // The relative adaptiveness of negative-first decreases as n
    // grows (Section 4.1's discussion).
    const Mesh mesh2(4, 4);
    const Mesh mesh3({4, 4, 4});
    const auto r2 =
        summarizeAdaptiveness(mesh2, *makeRouting({.name = "negative-first", .dims = 2}));
    const auto r3 =
        summarizeAdaptiveness(mesh3, *makeRouting({.name = "negative-first", .dims = 3}));
    EXPECT_GT(r2.meanRatio, r3.meanRatio);
}

TEST(TwoPhaseFormula, AgreesWithSpecificFormulas)
{
    const Mesh mesh(7, 7);
    DirectionSet wf_phase1;
    wf_phase1.insert(Direction::negative(0));
    for (NodeId s = 0; s < mesh.numNodes(); s += 5) {
        for (NodeId d = 0; d < mesh.numNodes(); d += 3) {
            if (s == d)
                continue;
            EXPECT_EQ(pathsTwoPhase(mesh, wf_phase1, s, d),
                      pathsWestFirst(mesh, s, d));
        }
    }
}

TEST(Summary, FullyAdaptiveHasRatioOne)
{
    const Mesh mesh(4, 4);
    const auto summary =
        summarizeAdaptiveness(mesh, *makeRouting({.name = "fully-adaptive"}));
    EXPECT_DOUBLE_EQ(summary.meanRatio, 1.0);
    EXPECT_DOUBLE_EQ(summary.meanPaths, summary.meanFullyAdaptive);
}

} // namespace
} // namespace turnnet
