/**
 * @file
 * Tests for the static routing certifier: numbering synthesis over
 * the exact reachable CDG, minimal cycle witnesses, turn-set
 * soundness, the progress (ranking-function) check, and the
 * registry-wide certification sweep — including the cross-check
 * that the certifier's static counterexample for fully adaptive
 * routing describes the same deadlock core the runtime forensics
 * reconstruct from a genuinely wedged fabric, on both simulator
 * engines.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "turnnet/analysis/cdg.hpp"
#include "turnnet/analysis/vc_cdg.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/trace/forensics.hpp"
#include "turnnet/traffic/pattern.hpp"
#include "turnnet/turnmodel/prohibition.hpp"
#include "turnnet/verify/certify.hpp"

namespace turnnet {
namespace {

TEST(Certifier, SynthesizesVerifiedNumberingForXy)
{
    const Mesh mesh(4, 4);
    const RoutingPtr xy = makeRouting({.name = "xy"});
    const DeadlockCertificate cert =
        certifyDeadlockFreedom(mesh, *xy);

    EXPECT_TRUE(cert.deadlockFree);
    EXPECT_TRUE(cert.numberingVerified);
    EXPECT_EQ(cert.numVcs, 1);
    EXPECT_EQ(cert.numVertices,
              static_cast<std::size_t>(mesh.numChannels()));
    ASSERT_EQ(cert.numbering.size(), cert.numVertices);
    EXPECT_TRUE(cert.witness.empty());

    // Independently re-check the certificate against the graph it
    // claims to number: every dependency edge must ascend.
    const CdgGraph graph = buildCdg(mesh, *xy);
    EXPECT_EQ(cert.numEdges, graph.numEdges);
    for (std::size_t c = 0; c < graph.adj.size(); ++c) {
        for (ChannelId to : graph.adj[c]) {
            EXPECT_LT(cert.numbering[c], cert.numbering[to]);
        }
    }

    // The numbering is a permutation of 0..V-1 (a topological
    // position per vertex).
    std::set<std::uint64_t> distinct(cert.numbering.begin(),
                                     cert.numbering.end());
    EXPECT_EQ(distinct.size(), cert.numVertices);
}

TEST(Certifier, EveryCertifiedAlgorithmNumbersItsFullGraph)
{
    const Mesh mesh(4, 4);
    for (const char *alg :
         {"west-first", "north-last", "negative-first", "abonf",
          "abopl", "odd-even", "west-first-nm",
          "negative-first-nm"}) {
        const RoutingPtr routing =
            makeRouting({.name = alg, .dims = 2});
        const DeadlockCertificate cert =
            certifyDeadlockFreedom(mesh, *routing);
        EXPECT_TRUE(cert.deadlockFree) << alg;
        EXPECT_TRUE(cert.numberingVerified) << alg;
        EXPECT_EQ(cert.numbering.size(), cert.numVertices) << alg;
    }
}

TEST(Certifier, RejectsFullyAdaptiveWithMinimalWitness)
{
    const Mesh mesh(4, 4);
    const RoutingPtr fa = makeRouting({.name = "fully-adaptive"});
    const DeadlockCertificate cert = certifyDeadlockFreedom(mesh, *fa);

    EXPECT_FALSE(cert.deadlockFree);
    EXPECT_TRUE(cert.numbering.empty());
    // The shortest CDG cycle in a mesh runs around one unit square:
    // four channels. A longer witness would not be minimal.
    ASSERT_EQ(cert.witness.size(), 4u);

    // Every hop of the witness, including the closing one, is a
    // genuine dependency edge.
    const CdgGraph graph = buildCdg(mesh, *fa);
    for (std::size_t i = 0; i < cert.witness.size(); ++i) {
        const ChannelId held = cert.witness[i].first;
        const ChannelId wanted =
            cert.witness[(i + 1) % cert.witness.size()].first;
        EXPECT_TRUE(graph.hasEdge(held, wanted))
            << "witness hop " << i << " is not a CDG edge";
    }

    // The rendered chain names every held/wanted pair and closes.
    const std::string text = cert.witnessToString(mesh);
    EXPECT_NE(text.find("holds"), std::string::npos);
    EXPECT_NE(text.find("wants"), std::string::npos);
    EXPECT_NE(text.find("closes the cycle"), std::string::npos);
}

TEST(Certifier, VcSchemesCertifyAndNaiveSpreadIsRejected)
{
    const Torus torus(4, 2);
    const VcRoutingPtr dateline = makeVcRouting({.name = "dateline"});
    const DeadlockCertificate dl =
        certifyDeadlockFreedom(torus, *dateline);
    EXPECT_TRUE(dl.deadlockFree);
    EXPECT_TRUE(dl.numberingVerified);
    EXPECT_EQ(dl.numVcs, 2);
    EXPECT_EQ(dl.numbering.size(),
              static_cast<std::size_t>(torus.numChannels()) * 2);

    const Mesh mesh(4, 4);
    const VcRoutingPtr dy = makeVcRouting({.name = "double-y"});
    EXPECT_TRUE(certifyDeadlockFreedom(mesh, *dy).deadlockFree);

    // Fully adaptive through the single-VC adapter keeps its cycle;
    // the witness decodes to (channel, vc 0) hops.
    const VcRoutingPtr fa = makeVcRouting({.name = "fully-adaptive"});
    const DeadlockCertificate bad = certifyDeadlockFreedom(mesh, *fa);
    EXPECT_FALSE(bad.deadlockFree);
    ASSERT_FALSE(bad.witness.empty());
    for (const auto &hop : bad.witness)
        EXPECT_EQ(hop.second, 0);
}

TEST(TurnSoundness, ImplementationsMatchTheirDeclaredSets)
{
    const Mesh mesh(4, 4);
    for (const char *alg :
         {"xy", "west-first", "north-last", "negative-first",
          "abonf", "abopl", "west-first-nm", "negative-first-nm"}) {
        const RoutingSpec spec{.name = alg, .dims = 2};
        const auto declared = declaredTurnSet(spec);
        ASSERT_TRUE(declared.has_value()) << alg;
        const TurnSoundnessResult result = checkTurnSoundness(
            mesh, *makeRouting(spec), *declared);
        EXPECT_TRUE(result.sound)
            << alg << " realizes prohibited turns: "
            << result.violationsToString();
        EXPECT_GT(result.realizedTurns, 0) << alg;
    }
}

TEST(TurnSoundness, DriftIsDetected)
{
    // West-first against north-last's declared set: the algorithms
    // prohibit different turns, so west-first must realize turns
    // north-last declares illegal — the drift signal.
    const Mesh mesh(4, 4);
    const RoutingPtr wf = makeRouting({.name = "west-first"});
    const TurnSoundnessResult result =
        checkTurnSoundness(mesh, *wf, northLastTurns());
    EXPECT_FALSE(result.sound);
    EXPECT_FALSE(result.violations.empty());
    EXPECT_FALSE(result.violationsToString().empty());
}

TEST(TurnSoundness, UndeclaredAlgorithmsReportNoSet)
{
    EXPECT_FALSE(declaredTurnSet({.name = "odd-even"}).has_value());
    EXPECT_FALSE(
        declaredTurnSet({.name = "fully-adaptive"}).has_value());
    EXPECT_FALSE(declaredTurnSet({.name = "nf-torus"}).has_value());
    // Nonminimal and induced forms inherit the base declaration.
    EXPECT_TRUE(
        declaredTurnSet({.name = "west-first-nm"}).has_value());
    EXPECT_TRUE(declaredTurnSet({.name = "turnset:negative-first"})
                    .has_value());
}

/** Routing that never takes a westward hop, even for a westward
 *  destination: minimal-looking but unable to deliver west traffic.
 *  Exists to give the progress check something to catch. */
class EastboundOnly : public RoutingFunction
{
  public:
    std::string name() const override { return "eastbound-only"; }
    bool isMinimal() const override { return true; }

    DirectionSet
    route(const Topology &topo, NodeId current, NodeId dest,
          Direction in_dir) const override
    {
        (void)in_dir;
        DirectionSet out;
        topo.minimalDirections(current, dest).forEach(
            [&](Direction d) {
                if (!(d.dim() == 0 && d.isNegative()))
                    out.insert(d);
            });
        return out;
    }
};

TEST(Progress, PaperAlgorithmsAlwaysRankDown)
{
    const Mesh mesh(4, 4);
    for (const char *alg :
         {"xy", "west-first", "negative-first", "odd-even",
          "west-first-nm", "north-last-nm", "negative-first-nm",
          "fully-adaptive"}) {
        const ProgressResult result = checkProgress(
            mesh, *makeRouting({.name = alg, .dims = 2}));
        EXPECT_TRUE(result.ok) << alg << ":\n"
                               << result.violationsToString(mesh);
        EXPECT_GT(result.statesChecked, 0u) << alg;
    }
}

TEST(Progress, DeadEndedRelationIsReported)
{
    const Mesh mesh(4, 4);
    const EastboundOnly broken;
    const ProgressResult result = checkProgress(mesh, broken);
    EXPECT_FALSE(result.ok);
    EXPECT_FALSE(result.violations.empty());
    // Every violation names a state that genuinely cannot deliver:
    // the destination lies west of the stuck node.
    for (const ProgressViolation &v : result.violations) {
        EXPECT_LT(mesh.coordOf(v.dest)[0], mesh.coordOf(v.node)[0]);
    }
    const std::string text = result.violationsToString(mesh);
    EXPECT_NE(text.find("no permitted path to delivery"),
              std::string::npos);
}

TEST(CertifySweep, EveryDefaultCaseMeetsItsExpectedVerdict)
{
    const CertifyReport report =
        runCertification(defaultCertifyCases());
    for (const CertifyCaseResult &r : report.cases) {
        EXPECT_TRUE(r.pass)
            << r.topologyName << " " << r.spec.algorithm
            << (r.witnessText.empty() ? "" : "\n" + r.witnessText);
    }
    EXPECT_TRUE(report.allPassed());
    EXPECT_GE(report.cases.size(), 30u);

    // The sweep must exercise the negative path on every family.
    std::set<std::string> rejected_on;
    for (const CertifyCaseResult &r : report.cases) {
        if (!r.spec.expectDeadlockFree) {
            EXPECT_FALSE(r.certificate.deadlockFree)
                << r.topologyName;
            EXPECT_FALSE(r.witnessText.empty()) << r.topologyName;
            rejected_on.insert(r.spec.topology);
        }
    }
    // fully-adaptive on mesh/torus/hypercube plus the no-VC
    // dragonfly witness.
    EXPECT_EQ(rejected_on.size(), 4u);
    EXPECT_TRUE(rejected_on.count("dragonfly(2,1,1)"));

    const std::string text = report.toString();
    EXPECT_NE(text.find("rejected, minimal cycle"),
              std::string::npos);
    EXPECT_EQ(text.find("FAIL"), std::string::npos);
}

/** Channels of @p graph reachable from @p from. */
std::vector<bool>
reachableFrom(const CdgGraph &graph, ChannelId from)
{
    std::vector<bool> seen(graph.adj.size(), false);
    std::deque<ChannelId> queue{from};
    seen[from] = true;
    while (!queue.empty()) {
        const ChannelId c = queue.front();
        queue.pop_front();
        for (ChannelId next : graph.adj[c]) {
            if (!seen[next]) {
                seen[next] = true;
                queue.push_back(next);
            }
        }
    }
    return seen;
}

/**
 * The cross-engine agreement obligation: the certifier's static
 * counterexample and the forensics wait-chain from a really wedged
 * run must describe the same deadlock core — every dynamic wait hop
 * is a static CDG edge, and the two cycles are mutually reachable
 * inside the graph (one strongly connected deadlock core, not two
 * unrelated artifacts).
 */
void
expectWitnessMatchesForensics(SimEngine engine, unsigned shards = 0)
{
    const Mesh mesh(4, 4);
    const RoutingPtr fa = makeRouting({.name = "fully-adaptive"});

    // The static side.
    const DeadlockCertificate cert = certifyDeadlockFreedom(mesh, *fa);
    ASSERT_FALSE(cert.deadlockFree);
    ASSERT_FALSE(cert.witness.empty());

    // The dynamic side: wedge a real fabric (the forensics suite's
    // stress workload) and reconstruct the wait chain.
    SimConfig config;
    config.load = 0.5;
    config.lengths = MessageLengthMix::fixed(200);
    config.watchdogCycles = 8000;
    config.warmupCycles = 100;
    config.measureCycles = 40000;
    config.drainCycles = 100;
    config.seed = 3;
    config.engine = engine;
    config.shards = shards;
    Simulator sim(mesh, fa, makeTraffic("uniform", mesh), config);
    ASSERT_TRUE(sim.run().deadlocked);
    const DeadlockReport forensics = collectDeadlockForensics(sim);
    ASSERT_FALSE(forensics.waitCycle.empty());
    EXPECT_TRUE(forensics.cycleClosesInCdg);
    EXPECT_TRUE(forensics.routingCdgCyclic);

    // Every dynamic wait hop is a static dependency edge.
    const CdgGraph graph = buildCdg(mesh, *fa);
    const std::size_t n = forensics.waitCycle.size();
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(graph.hasEdge(forensics.waitCycle[i],
                                  forensics.waitCycle[(i + 1) % n]))
            << "forensics hop " << i << " is not a CDG edge";
    }

    // Mutual reachability: the static witness and the dynamic cycle
    // live in one strongly connected deadlock core.
    const ChannelId from_static = cert.witness.front().first;
    const ChannelId from_dynamic = forensics.waitCycle.front();
    EXPECT_TRUE(reachableFrom(graph, from_static)[from_dynamic]);
    EXPECT_TRUE(reachableFrom(graph, from_dynamic)[from_static]);
}

TEST(CertifyForensics, WitnessMatchesWedgedRunReferenceEngine)
{
    expectWitnessMatchesForensics(SimEngine::Reference);
}

TEST(CertifyForensics, WitnessMatchesWedgedRunFastEngine)
{
    expectWitnessMatchesForensics(SimEngine::Fast);
}

TEST(CertifyForensics, WitnessMatchesWedgedRunBatchEngine)
{
    expectWitnessMatchesForensics(SimEngine::Batch);
}

TEST(CertifyForensics, WitnessMatchesWedgedRunShardedEngine)
{
    // An uneven 3-way split of the 16-node mesh: the wedged (fully
    // stalled) fabric is the stress case for the sharded engine's
    // cross-shard chain walks.
    expectWitnessMatchesForensics(SimEngine::Sharded, 3);
}

} // namespace
} // namespace turnnet
