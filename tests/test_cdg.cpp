/**
 * @file
 * Channel-dependency-graph verdicts for every shipped algorithm:
 * the turn-model algorithms are deadlock free on every applicable
 * topology, while unrestricted fully adaptive routing (no extra
 * channels) is cyclic — the computational content of Figures 1-4.
 */

#include <gtest/gtest.h>

#include <memory>

#include "turnnet/analysis/cdg.hpp"
#include "turnnet/routing/fully_adaptive.hpp"
#include "turnnet/routing/pcube.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"

namespace turnnet {
namespace {

struct MeshCase
{
    std::string algorithm;
};

class MeshAlgorithmCdg : public ::testing::TestWithParam<MeshCase>
{
};

TEST_P(MeshAlgorithmCdg, AcyclicOn2DMeshes)
{
    const RoutingPtr routing = makeRouting({.name = GetParam().algorithm, .dims = 2});
    for (const auto &[w, h] :
         {std::pair{4, 4}, {6, 6}, {5, 3}, {2, 7}}) {
        const Mesh mesh(w, h);
        const CdgReport report = analyzeDependencies(mesh, *routing);
        EXPECT_TRUE(report.acyclic)
            << routing->name() << " on " << mesh.name() << ": "
            << report.cycleToString(mesh);
        EXPECT_GT(report.numEdges, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperAlgorithms, MeshAlgorithmCdg,
    ::testing::Values(MeshCase{"xy"}, MeshCase{"west-first"},
                      MeshCase{"north-last"},
                      MeshCase{"negative-first"},
                      MeshCase{"turnset:west-first"},
                      MeshCase{"turnset:north-last"},
                      MeshCase{"turnset:negative-first"}),
    [](const auto &test_info) {
        std::string name = test_info.param.algorithm;
        for (char &ch : name)
            if (ch == '-' || ch == ':')
                ch = '_';
        return name;
    });

TEST(Cdg, NDimensionalAlgorithmsAcyclic)
{
    const Mesh mesh3d({3, 3, 3});
    const Mesh mesh3d_rect({4, 2, 3});
    for (const char *alg :
         {"dimension-order", "negative-first", "abonf", "abopl"}) {
        const RoutingPtr routing = makeRouting({.name = alg, .dims = 3});
        EXPECT_TRUE(isDeadlockFree(mesh3d, *routing)) << alg;
        EXPECT_TRUE(isDeadlockFree(mesh3d_rect, *routing)) << alg;
    }
}

TEST(Cdg, HypercubeAlgorithmsAcyclic)
{
    const Hypercube cube(4);
    for (const char *alg :
         {"ecube", "p-cube", "negative-first", "abonf", "abopl"}) {
        const RoutingPtr routing = makeRouting({.name = alg, .dims = 4});
        EXPECT_TRUE(isDeadlockFree(cube, *routing)) << alg;
    }
}

TEST(Cdg, NonminimalVariantsAcyclic)
{
    // Nonminimal routing uses more turns (and more dependencies) but
    // the prohibited turns still break every cycle.
    const Mesh mesh(4, 4);
    for (const char *alg :
         {"west-first", "north-last", "negative-first"}) {
        const RoutingPtr routing = makeRouting({.name = alg, .dims = 2, .minimal = false});
        EXPECT_TRUE(isDeadlockFree(mesh, *routing)) << alg;
    }
    const Hypercube cube(4);
    EXPECT_TRUE(
        isDeadlockFree(cube, *makeRouting({.name = "p-cube", .dims = 4, .minimal = false})));
    EXPECT_TRUE(isDeadlockFree(cube, PCubeFigure12()));
}

TEST(Cdg, FullyAdaptiveIsCyclicOnMeshes)
{
    // Figure 1: minimal fully adaptive routing without extra
    // channels deadlocks. Its CDG contains the abstract cycles.
    const FullyAdaptive adaptive;
    for (const auto &[w, h] : {std::pair{3, 3}, {4, 4}, {5, 3}}) {
        const Mesh mesh(w, h);
        const CdgReport report = analyzeDependencies(mesh, adaptive);
        EXPECT_FALSE(report.acyclic) << mesh.name();
        EXPECT_GE(report.cycle.size(), 4u);
    }
}

TEST(Cdg, FullyAdaptiveIsCyclicOnHypercubes)
{
    const FullyAdaptive adaptive;
    EXPECT_FALSE(isDeadlockFree(Hypercube(3), adaptive));
    EXPECT_FALSE(isDeadlockFree(Hypercube(4), adaptive));
}

TEST(Cdg, WitnessCycleIsARealDependencyCycle)
{
    const FullyAdaptive adaptive;
    const Mesh mesh(4, 4);
    const CdgReport report = analyzeDependencies(mesh, adaptive);
    ASSERT_FALSE(report.acyclic);
    ASSERT_GE(report.cycle.size(), 2u);
    // Consecutive channels in the witness share a router.
    for (std::size_t i = 0; i < report.cycle.size(); ++i) {
        const Channel &cur = mesh.channel(report.cycle[i]);
        const Channel &next = mesh.channel(
            report.cycle[(i + 1) % report.cycle.size()]);
        EXPECT_EQ(cur.dst, next.src);
    }
    EXPECT_FALSE(report.cycleToString(mesh).empty());
}

TEST(Cdg, XyHasFewerDependenciesThanAdaptive)
{
    // Adaptiveness shows up as extra dependency edges; xy routing,
    // being nonadaptive, has the fewest.
    const Mesh mesh(5, 5);
    const auto xy = analyzeDependencies(mesh, *makeRouting({.name = "xy"}));
    const auto wf =
        analyzeDependencies(mesh, *makeRouting({.name = "west-first"}));
    const auto fa = analyzeDependencies(mesh, FullyAdaptive());
    EXPECT_LT(xy.numEdges, wf.numEdges);
    EXPECT_LT(wf.numEdges, fa.numEdges);
}

TEST(Cdg, TorusExtensionsAcyclic)
{
    const Torus small(4, 2);
    const Torus odd(5, 2);
    for (const char *alg :
         {"nf-torus", "xy-first-hop-wrap", "nf-first-hop-wrap"}) {
        const RoutingPtr routing = makeRouting({.name = alg, .dims = 2});
        EXPECT_TRUE(isDeadlockFree(small, *routing)) << alg;
        EXPECT_TRUE(isDeadlockFree(odd, *routing)) << alg;
    }
    const Torus cube3(std::vector<int>{3, 3, 3});
    EXPECT_TRUE(isDeadlockFree(cube3, *makeRouting({.name = "nf-torus", .dims = 3})));
}

TEST(Cdg, MinimalAdaptiveOnTorusIsCyclic)
{
    // Without extra channels even *dimension-order-style* minimal
    // routing deadlocks on a torus with k > 4 because of the
    // wraparound cycles (Section 4.2); fully adaptive minimal is
    // cyclic already at k = 4.
    const FullyAdaptive adaptive;
    EXPECT_FALSE(isDeadlockFree(Torus(4, 2), adaptive));
    EXPECT_FALSE(isDeadlockFree(Torus(5, 2), adaptive));
}

} // namespace
} // namespace turnnet
