/**
 * @file
 * Tests for the sweep/figure harness: deterministic sweeps, the
 * sustainable-throughput aggregation, and table rendering.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "turnnet/harness/figures.hpp"
#include "turnnet/harness/sweep.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

SimConfig
tinyConfig()
{
    SimConfig base;
    base.warmupCycles = 200;
    base.measureCycles = 1000;
    base.drainCycles = 2000;
    base.seed = 5;
    return base;
}

TEST(Sweep, RunsOnePointPerLoad)
{
    const Mesh mesh(4, 4);
    const auto sweep = runLoadSweep(
        mesh, makeRouting({.name = "xy"}), makeTraffic("uniform", mesh),
        {0.02, 0.05, 0.08}, tinyConfig());
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_DOUBLE_EQ(sweep[0].offered, 0.02);
    EXPECT_DOUBLE_EQ(sweep[2].offered, 0.08);
    for (const SweepPoint &p : sweep) {
        EXPECT_DOUBLE_EQ(p.result.offeredLoad, p.offered);
        EXPECT_GT(p.result.packetsMeasured, 0u);
    }
}

TEST(Sweep, IsDeterministic)
{
    const Mesh mesh(4, 4);
    auto run = [&]() {
        return runLoadSweep(mesh, makeRouting({.name = "west-first"}),
                            makeTraffic("uniform", mesh),
                            {0.03, 0.06}, tinyConfig());
    };
    const auto a = run();
    const auto b = run();
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].result.avgTotalLatencyUs,
                         b[i].result.avgTotalLatencyUs);
        EXPECT_EQ(a[i].result.packetsFinished,
                  b[i].result.packetsFinished);
    }
}

TEST(Sweep, PointsUseDistinctSeeds)
{
    // Two points at the same load must not be identical copies.
    const Mesh mesh(4, 4);
    const auto sweep = runLoadSweep(
        mesh, makeRouting({.name = "xy"}), makeTraffic("uniform", mesh),
        {0.05, 0.05}, tinyConfig());
    EXPECT_NE(sweep[0].result.avgTotalLatencyUs,
              sweep[1].result.avgTotalLatencyUs);
}

TEST(Sweep, MaxSustainableIgnoresSaturatedPoints)
{
    std::vector<SweepPoint> sweep(3);
    sweep[0].result.sustainable = true;
    sweep[0].result.acceptedFlitsPerUsec = 100;
    sweep[1].result.sustainable = true;
    sweep[1].result.acceptedFlitsPerUsec = 180;
    sweep[2].result.sustainable = false;
    sweep[2].result.acceptedFlitsPerUsec = 400;
    EXPECT_DOUBLE_EQ(maxSustainableThroughput(sweep), 180.0);

    sweep[1].result.deadlocked = true;
    EXPECT_DOUBLE_EQ(maxSustainableThroughput(sweep), 100.0);
}

TEST(Sweep, MaxSustainableIsZeroWhenEverythingSaturates)
{
    std::vector<SweepPoint> sweep(2);
    sweep[0].result.sustainable = false;
    sweep[1].result.sustainable = false;
    EXPECT_DOUBLE_EQ(maxSustainableThroughput(sweep), 0.0);
}

TEST(Sweep, BaselineHopsComesFromTheFirstFinishedPoint)
{
    std::vector<SweepPoint> sweep(2);
    sweep[0].result.packetsFinished = 0;
    sweep[0].result.avgHops = 99.0;
    sweep[1].result.packetsFinished = 10;
    sweep[1].result.avgHops = 5.25;
    EXPECT_DOUBLE_EQ(baselineHops(sweep), 5.25);
}

TEST(Sweep, TableHasOneRowPerPoint)
{
    const Mesh mesh(4, 4);
    const auto sweep = runLoadSweep(
        mesh, makeRouting({.name = "xy"}), makeTraffic("uniform", mesh),
        {0.02, 0.05}, tinyConfig());
    const Table table = sweepTable("t", sweep);
    EXPECT_EQ(table.numRows(), 2u);
    EXPECT_EQ(table.at(0, 0), "0.0200");
    const std::string rendered = table.toAligned();
    EXPECT_NE(rendered.find("latency(us)"), std::string::npos);
}

TEST(Sweep, TaskSeedsAreDecorrelatedAndOrderFree)
{
    // The seed of a grid task depends only on (base seed, flat
    // index): two tasks never share a seed, and the same index
    // always gets the same seed no matter how the grid is executed.
    std::vector<std::uint64_t> seeds;
    for (std::size_t point = 0; point < 8; ++point)
        for (unsigned rep = 0; rep < 3; ++rep)
            seeds.push_back(sweepTaskSeed(42, point, rep, 3));
    for (std::size_t i = 0; i < seeds.size(); ++i)
        for (std::size_t j = i + 1; j < seeds.size(); ++j)
            EXPECT_NE(seeds[i], seeds[j]) << i << "," << j;
    EXPECT_EQ(sweepTaskSeed(42, 5, 1, 3),
              sweepTaskSeed(42, 5, 1, 3));
    EXPECT_NE(sweepTaskSeed(42, 0, 0, 1),
              sweepTaskSeed(43, 0, 0, 1));
}

TEST(Sweep, ParallelIsBitIdenticalToSerial)
{
    const Mesh mesh(4, 4);
    auto run = [&](unsigned jobs) {
        SweepOptions opts;
        opts.jobs = jobs;
        return runLoadSweep(mesh, makeRouting({.name = "west-first"}),
                            makeTraffic("uniform", mesh),
                            {0.03, 0.05, 0.07, 0.09}, tinyConfig(),
                            opts);
    };
    const auto serial = run(1);
    const auto parallel = run(4);
    EXPECT_TRUE(figureResultsIdentical({serial}, {parallel}));
}

TEST(Sweep, ReplicatedParallelIsBitIdenticalToSerial)
{
    const Mesh mesh(4, 4);
    auto run = [&](unsigned jobs) {
        SweepOptions opts;
        opts.jobs = jobs;
        opts.replicates = 3;
        return runLoadSweep(mesh, makeRouting({.name = "negative-first"}),
                            makeTraffic("transpose", mesh),
                            {0.04, 0.08}, tinyConfig(), opts);
    };
    const auto serial = run(1);
    const auto parallel = run(4);
    EXPECT_TRUE(figureResultsIdentical({serial}, {parallel}));
}

TEST(Sweep, ReplicatesPoolSamplesAcrossRuns)
{
    const Mesh mesh(4, 4);
    SweepOptions three;
    three.replicates = 3;
    const auto pooled = runLoadSweep(
        mesh, makeRouting({.name = "xy"}), makeTraffic("uniform", mesh),
        {0.05}, tinyConfig(), three);
    const auto single = runLoadSweep(
        mesh, makeRouting({.name = "xy"}), makeTraffic("uniform", mesh),
        {0.05}, tinyConfig());
    ASSERT_EQ(pooled.size(), 1u);
    // Three replicates pool roughly three times the measured
    // packets of a single run, and all their samples land in the
    // merged accumulators.
    EXPECT_GT(pooled[0].result.packetsMeasured,
              single[0].result.packetsMeasured);
    EXPECT_EQ(pooled[0].result.totalLatencyStats.count(),
              pooled[0].result.packetsFinished);
    EXPECT_EQ(pooled[0].result.latencyHistogram.count(),
              pooled[0].result.packetsFinished);
}

TEST(Sweep, PointSeedsAreIndependentOfTheGridShape)
{
    // Extending the load grid must not change earlier points:
    // seeds key on the point's own index, not on the grid size.
    const Mesh mesh(4, 4);
    auto sweep_for = [&](const std::vector<double> &loads) {
        return runLoadSweep(mesh, makeRouting({.name = "xy"}),
                            makeTraffic("uniform", mesh), loads,
                            tinyConfig());
    };
    const auto small = sweep_for({0.05});
    const auto large = sweep_for({0.05, 0.08, 0.11});
    EXPECT_TRUE(figureResultsIdentical(
        {small}, {{large[0]}}));
}

TEST(Sweep, VcOverloadMatchesSerialAndParallel)
{
    const Mesh mesh(4, 4);
    auto run = [&](unsigned jobs) {
        SweepOptions opts;
        opts.jobs = jobs;
        return runLoadSweep(mesh, makeVcRouting({.name = "double-y", .dims = 2}),
                            makeTraffic("uniform", mesh),
                            {0.04, 0.07}, tinyConfig(), opts);
    };
    const auto serial = run(1);
    const auto parallel = run(3);
    ASSERT_EQ(serial.size(), 2u);
    for (const SweepPoint &p : serial)
        EXPECT_GT(p.result.packetsMeasured, 0u);
    EXPECT_TRUE(figureResultsIdentical({serial}, {parallel}));
}

TEST(Figures, RunFigureReturnsOneSweepPerAlgorithm)
{
    FigureSpec spec = quickened(figureSpec("fig13"));
    spec.loads = {0.02};
    SimConfig base = tinyConfig();
    const auto sweeps = runFigure(spec, base, false);
    ASSERT_EQ(sweeps.size(), spec.algorithms.size());
    for (const auto &sweep : sweeps)
        ASSERT_EQ(sweep.size(), 1u);
    // Algorithms really differ (names recorded in results).
    EXPECT_EQ(sweeps[0][0].result.algorithm, "xy");
    EXPECT_EQ(sweeps[1][0].result.algorithm, "west-first");
}

TEST(Figures, SpecsUseStrictlyIncreasingLoads)
{
    for (const char *id : {"fig13", "fig14", "fig15", "fig16"}) {
        const FigureSpec spec = figureSpec(id);
        for (std::size_t i = 1; i < spec.loads.size(); ++i)
            EXPECT_LT(spec.loads[i - 1], spec.loads[i]) << id;
    }
}

} // namespace
} // namespace turnnet
