/**
 * @file
 * Tests for the static path-space analyzer: the selection-policy
 * registry, the refinement verifier (safe policies refine, the
 * unsafe-escape mock is refuted with a checkable witness), the
 * channel-load predictor (hand-computed loads, hop-mass
 * conservation, adversaries beating uniform), the prediction's
 * cross-validation against the simulator's measured channel
 * utilization at low load, and the multi-error request validation
 * behind tools/turnnet-analyze.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "turnnet/harness/analyze_report.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/selection_policy.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/topology_registry.hpp"
#include "turnnet/verify/analyze.hpp"
#include "turnnet/verify/load_analysis.hpp"
#include "turnnet/verify/refinement.hpp"
#include "turnnet/workload/adversarial.hpp"

namespace turnnet {
namespace {

bool
sameSet(DirectionSet a, DirectionSet b)
{
    return (a - b).empty() && (b - a).empty();
}

TEST(SelectionPolicies, RegistryIsSaneAndInstantiable)
{
    const std::vector<SelectionPolicyEntry> &entries =
        selectionPolicies();
    ASSERT_GE(entries.size(), 6u);

    std::set<std::string> names;
    bool has_negative_control = false;
    for (const SelectionPolicyEntry &e : entries) {
        EXPECT_TRUE(names.insert(e.name).second)
            << "duplicate policy name " << e.name;
        EXPECT_NE(std::string(e.rationale), "");
        has_negative_control |= !e.expectRefines;

        EXPECT_TRUE(isKnownSelectionPolicy(e.name));
        const SelectionPolicyPtr p = makeSelectionPolicy(e.name);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), e.name);
    }
    // The registry must carry the deliberately unsafe mock; a
    // refinement gate with no refutable input proves nothing.
    EXPECT_TRUE(has_negative_control);
    EXPECT_EQ(names.count("unsafe-escape"), 1u);
    EXPECT_FALSE(isKnownSelectionPolicy("no-such-policy"));
}

TEST(SelectionPolicies, LoadSplitIsAStochasticVector)
{
    // Every policy's stationary split must be a distribution over
    // the legal set: non-negative, zero outside it, summing to 1.
    const Mesh mesh(4, 4);
    const RoutingPtr routing =
        makeRouting({.name = "west-first", .dims = 2});
    const NodeId src = mesh.nodeOf({0, 0});
    const NodeId dst = mesh.nodeOf({3, 3});
    const DirectionSet legal =
        routing->route(mesh, src, dst, Direction::local());
    ASSERT_GT(legal.size(), 1);

    for (const SelectionPolicyEntry &e : selectionPolicies()) {
        const SelectionPolicyPtr p = makeSelectionPolicy(e.name);
        std::vector<double> w;
        p->loadSplit(mesh, src, dst, Direction::local(), legal, w);
        ASSERT_GE(w.size(),
                  static_cast<std::size_t>(mesh.numPorts()));
        double total = 0.0;
        for (int i = 0; i < mesh.numPorts(); ++i) {
            EXPECT_GE(w[static_cast<std::size_t>(i)], 0.0)
                << e.name;
            if (!legal.contains(Direction::fromIndex(i))) {
                EXPECT_EQ(w[static_cast<std::size_t>(i)], 0.0)
                    << e.name << " puts mass outside the legal set";
            }
            total += w[static_cast<std::size_t>(i)];
        }
        EXPECT_NEAR(total, 1.0, 1e-12) << e.name;
    }
}

TEST(Refinement, SafePoliciesRefineTheRestrictedRelations)
{
    // The strongly restricted algorithms are where an unsound
    // policy would be caught; every expectRefines policy must hold.
    const Mesh mesh(4, 4);
    for (const char *alg : {"xy", "west-first", "negative-first"}) {
        const RoutingPtr routing =
            makeRouting({.name = alg, .dims = 2});
        for (const SelectionPolicyEntry &e : selectionPolicies()) {
            if (!e.expectRefines)
                continue;
            const RefinementResult r = checkPolicyRefinement(
                mesh, *routing, *makeSelectionPolicy(e.name));
            EXPECT_TRUE(r.refines) << alg << " + " << e.name << ": "
                                   << r.witnessToString(mesh);
            EXPECT_GT(r.statesChecked, 0u);
            // Battery: uncongested + uniform + one hot context per
            // port, so strictly more probes than states.
            EXPECT_GT(r.contextsChecked, r.statesChecked);
        }
    }
}

TEST(Refinement, UnsafeEscapeIsRefutedWithACheckableWitness)
{
    const Mesh mesh(4, 4);
    const RoutingPtr routing = makeRouting({.name = "xy", .dims = 2});
    const RefinementResult r = checkPolicyRefinement(
        mesh, *routing, *makeSelectionPolicy("unsafe-escape"));
    ASSERT_FALSE(r.refines);

    // The witness must replay: at the witnessed state the relation's
    // legal set matches what the witness recorded, and the chosen
    // direction really is outside it.
    const DirectionSet legal = routing->route(
        mesh, r.witness.node, r.witness.header, r.witness.inDir);
    EXPECT_TRUE(sameSet(legal, r.witness.legal));
    EXPECT_FALSE(legal.contains(r.witness.chosen));
    EXPECT_FALSE(r.witness.context.empty());

    const std::string text = r.witnessToString(mesh);
    EXPECT_NE(text.find("chose"), std::string::npos);
    EXPECT_NE(text.find(r.witness.context), std::string::npos);
}

TEST(Refinement, EscapeOnlyMisbehavesUnderCongestion)
{
    // The unsafe mock is well-behaved on the uncongested fast path —
    // exactly why the verifier needs the congestion battery. xy at
    // (1,1) bound for (0,0) permits only west; the minimal set also
    // holds south.
    const Mesh mesh(4, 4);
    const RoutingPtr routing = makeRouting({.name = "xy", .dims = 2});
    const SelectionPolicyPtr policy =
        makeSelectionPolicy("unsafe-escape");
    const NodeId node = mesh.nodeOf({1, 1});
    const NodeId dest = mesh.nodeOf({0, 0});
    const DirectionSet legal =
        routing->route(mesh, node, dest, Direction::local());
    ASSERT_EQ(legal.size(), 1);

    const DirectionSet calm = policy->choices(
        mesh, node, dest, Direction::local(), legal,
        CongestionContext::uncongested());
    EXPECT_TRUE((calm - legal).empty());

    const DirectionSet stressed = policy->choices(
        mesh, node, dest, Direction::local(), legal,
        CongestionContext::uniform(mesh.numPorts(), 1.0));
    EXPECT_FALSE((stressed - legal).empty());
}

TEST(LoadAnalysis, HandComputedTinyMesh)
{
    // mesh(2x2), xy, uniform: every node offers 1/3 to each of the
    // other three. Each x channel carries its source's two
    // column-crossing flows (2/3); each y channel carries the two
    // flows xy funnels through it (2/3). All eight channels at 2/3,
    // saturation at 1.5 flits/node/cycle.
    const Mesh mesh(2, 2);
    const RoutingPtr routing = makeRouting({.name = "xy", .dims = 2});
    const SelectionPolicyPtr policy =
        makeSelectionPolicy("lowest-dim");
    const TrafficMatrix matrix =
        buildTrafficMatrix(mesh, *makeTraffic("uniform", mesh));
    EXPECT_FALSE(matrix.sampled);
    ASSERT_EQ(matrix.flows.size(), 12u);

    const ChannelLoadPrediction p =
        predictChannelLoad(mesh, *routing, *policy, matrix);
    ASSERT_EQ(p.channelLoad.size(),
              static_cast<std::size_t>(mesh.numChannels()));
    for (const double load : p.channelLoad)
        EXPECT_NEAR(load, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(p.maxLoad, 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(p.saturationLoad, 1.5, 1e-12);
    EXPECT_NEAR(p.residualMass, 0.0, 1e-12);
    EXPECT_EQ(p.numFlows, 12u);
    EXPECT_EQ(p.hotspots.size(),
              static_cast<std::size_t>(mesh.numChannels()));
}

TEST(LoadAnalysis, ChannelMassEqualsHopMassForMinimalDeterministic)
{
    // For a deterministic minimal relation every unit of offered
    // mass crosses exactly hops(src,dst) channels, so the summed
    // channel load must equal the matrix's hop mass.
    const Mesh mesh(4, 4);
    const RoutingPtr routing = makeRouting({.name = "xy", .dims = 2});
    const SelectionPolicyPtr policy =
        makeSelectionPolicy("lowest-dim");
    const TrafficMatrix matrix =
        buildTrafficMatrix(mesh, *makeTraffic("uniform", mesh));

    double hop_mass = 0.0;
    for (const TrafficFlow &f : matrix.flows) {
        const Coord a = mesh.coordOf(f.src);
        const Coord b = mesh.coordOf(f.dst);
        hop_mass +=
            f.weight * (std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]));
    }

    const ChannelLoadPrediction p =
        predictChannelLoad(mesh, *routing, *policy, matrix);
    double channel_mass = 0.0;
    for (const double load : p.channelLoad)
        channel_mass += load;
    EXPECT_NEAR(channel_mass, hop_mass, 1e-9 * hop_mass);
    EXPECT_NEAR(p.residualMass, 0.0, 1e-12);
}

TEST(LoadAnalysis, SplitPoliciesConserveMassOnAdaptiveRelations)
{
    // Adaptive relations fan mass out; whatever the split, nothing
    // may leak. west-first on uniform under every safe policy.
    const Mesh mesh(4, 4);
    const RoutingPtr routing =
        makeRouting({.name = "west-first", .dims = 2});
    const TrafficMatrix matrix =
        buildTrafficMatrix(mesh, *makeTraffic("uniform", mesh));

    double min_hop_mass = 0.0;
    for (const TrafficFlow &f : matrix.flows) {
        const Coord a = mesh.coordOf(f.src);
        const Coord b = mesh.coordOf(f.dst);
        min_hop_mass +=
            f.weight * (std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]));
    }

    for (const SelectionPolicyEntry &e : selectionPolicies()) {
        if (!e.expectRefines)
            continue;
        const ChannelLoadPrediction p = predictChannelLoad(
            mesh, *routing, *makeSelectionPolicy(e.name), matrix);
        EXPECT_NEAR(p.residualMass, 0.0, 1e-12) << e.name;
        // west-first is minimal: the summed channel load is the
        // minimal hop mass no matter how the policy splits.
        double channel_mass = 0.0;
        for (const double load : p.channelLoad)
            channel_mass += load;
        EXPECT_NEAR(channel_mass, min_hop_mass,
                    1e-9 * min_hop_mass)
            << e.name;
    }
}

TEST(LoadAnalysis, EveryRegisteredAdversaryBeatsUniform)
{
    // The adversarial registry's whole claim is "worse than
    // uniform"; the static analyzer must reproduce it for every
    // entry, on the shape where the pattern is defined (tornado is
    // the ring adversary — see defaultLoadCases()).
    for (const AdversarialWorkload &adv : adversarialWorkloads()) {
        const std::string family = adv.family;
        std::string topology;
        bool vc = false;
        if (family == "mesh") {
            topology = "mesh(8x8)";
        } else if (family == "torus") {
            topology = "torus(16)";
        } else if (family == "dragonfly") {
            topology = "dragonfly(4,2,2)";
            vc = true;
        } else {
            ADD_FAILURE() << "no analyzer shape for adversarial "
                             "family "
                          << family << " (algorithm "
                          << adv.algorithm << ")";
            continue;
        }
        const LoadCaseOutcome uniform = runLoadCase(
            {topology, adv.algorithm, "lowest-dim", "uniform", vc});
        const LoadCaseOutcome attack = runLoadCase(
            {topology, adv.algorithm, "lowest-dim", "adversarial",
             vc});
        EXPECT_TRUE(uniform.pass) << adv.algorithm;
        EXPECT_TRUE(attack.pass) << adv.algorithm;
        EXPECT_EQ(attack.trafficName, adv.pattern);
        EXPECT_GT(attack.prediction.maxLoad,
                  uniform.prediction.maxLoad)
            << adv.pattern << " does not beat uniform for "
            << adv.algorithm << " on " << topology;
        EXPECT_LT(attack.prediction.saturationLoad,
                  uniform.prediction.saturationLoad)
            << adv.algorithm;
    }
}

TEST(LoadAnalysis, PredictionMatchesMeasuredUtilizationAtLowLoad)
{
    // The cross-validation bar: at <= 5% offered load the simulated
    // channel utilization must agree with offered * predicted load
    // within 10% on every channel the analyzer calls significant.
    // 3% keeps the busy-channel diversion of the router's LowestDim
    // arbitration (a first-order-in-load effect the stationary
    // split deliberately ignores) inside the tolerance.
    const double offered = 0.02;
    const std::string topology = "mesh(8x8)";
    const std::unique_ptr<Topology> topo =
        TopologyRegistry::instance().build(topology);

    for (const char *alg : {"xy", "west-first", "negative-first"}) {
        const RoutingPtr routing =
            makeRouting({.name = alg, .dims = 2});
        const SelectionPolicyPtr policy =
            makeSelectionPolicy("lowest-dim");
        const TrafficMatrix matrix = buildTrafficMatrix(
            *topo, *makeTraffic("uniform", *topo));
        const ChannelLoadPrediction prediction =
            predictChannelLoad(*topo, *routing, *policy, matrix);

        // Short fixed messages keep the drain tail (which dilutes
        // the utilization denominator) negligible next to the
        // measurement window, and maximize the message count per
        // channel — the per-channel Poisson noise shrinks as
        // 1/sqrt(messages), and the max over ~200 channels sits
        // several sigma out. LowestDim mirrors the analyzed policy.
        SimConfig config;
        config.load = offered;
        config.lengths = MessageLengthMix::fixed(2);
        config.warmupCycles = 2000;
        config.measureCycles = 360000;
        config.drainCycles = 20000;
        config.outputPolicy = OutputPolicy::LowestDim;
        config.trace.counters = true;
        config.seed = 20260807;
        Simulator sim(*topo, routing,
                      makeTraffic("uniform", *topo), config);
        sim.run();
        ASSERT_NE(sim.counters(), nullptr) << alg;

        // Compare channels predicted at >= 2% utilization: below
        // that the finite sample, not the model, dominates the
        // relative error.
        const LoadValidation v = validatePredictionAgainstCounters(
            prediction, *sim.counters(), offered, 0.10, 0.02);
        EXPECT_GT(v.channelsCompared, 0u) << alg;
        EXPECT_TRUE(v.withinTolerance)
            << alg << ": max rel error " << v.maxRelError << " over "
            << v.channelsCompared << " channels (mean "
            << v.meanRelError << ")";
    }
}

TEST(Analyze, DefaultTablesAreWiredToTheRegistries)
{
    // Every safe policy appears in the refinement table against
    // every certified single-channel relation, and the curated
    // negative-control rows are present.
    const std::vector<RefinementCase> refine =
        defaultRefinementCases();
    std::size_t negative = 0;
    for (const RefinementCase &c : refine) {
        EXPECT_TRUE(isKnownSelectionPolicy(c.policy));
        if (!c.expectRefines) {
            ++negative;
            EXPECT_EQ(c.policy, "unsafe-escape");
        }
    }
    EXPECT_GE(negative, 8u);

    const std::vector<LoadCase> load = defaultLoadCases();
    bool has_adversarial = false;
    bool has_vc = false;
    for (const LoadCase &c : load) {
        has_adversarial |= c.traffic == "adversarial";
        has_vc |= c.vc;
    }
    EXPECT_TRUE(has_adversarial);
    EXPECT_TRUE(has_vc);
}

TEST(Analyze, RefinementCaseOutcomeMatchesExpectation)
{
    const RefinementCaseOutcome good = runRefinementCase(
        {"mesh(4x4)", "west-first", "straight-first", true});
    EXPECT_TRUE(good.pass);
    EXPECT_TRUE(good.result.refines);
    EXPECT_TRUE(good.witnessText.empty());

    const RefinementCaseOutcome bad = runRefinementCase(
        {"mesh(4x4)", "negative-first", "unsafe-escape", false});
    EXPECT_TRUE(bad.pass);
    EXPECT_FALSE(bad.result.refines);
    EXPECT_FALSE(bad.witnessText.empty());

    // And an expectation mismatch is a FAIL, not a crash.
    const RefinementCaseOutcome mismatch = runRefinementCase(
        {"mesh(4x4)", "west-first", "unsafe-escape", true});
    EXPECT_FALSE(mismatch.pass);
}

TEST(AnalyzeRequest, ValidRequestBuildsTheCrossProduct)
{
    AnalyzeRequest request;
    request.topologies = {"mesh(4x4)"};
    request.algorithms = {"west-first"};
    request.traffics = {"uniform", "adversarial"};
    EXPECT_TRUE(request.validate().empty());

    std::vector<RefinementCase> refine;
    std::vector<LoadCase> load;
    request.buildCases(refine, load);

    // Policies defaulted to the safe registry entries only: an
    // implicit sweep must not inject the negative control on
    // arbitrary shapes.
    std::size_t safe_policies = 0;
    for (const SelectionPolicyEntry &e : selectionPolicies())
        safe_policies += e.expectRefines ? 1 : 0;
    EXPECT_EQ(refine.size(), safe_policies);
    for (const RefinementCase &c : refine) {
        EXPECT_TRUE(c.expectRefines);
        EXPECT_NE(c.policy, "unsafe-escape");
    }
    EXPECT_EQ(load.size(), 2 * safe_policies);
}

TEST(AnalyzeRequest, ValidationCollectsEveryProblem)
{
    // One request, six distinct mistakes: the gate must report all
    // of them in one pass instead of dying on the first.
    AnalyzeRequest request;
    request.topologies = {"mesh", "blob(4x4)", "mesh(4x4)"};
    request.algorithms = {"warp-speed", "nf-torus"};
    request.policies = {"greedy"};
    request.traffics = {"noise", "adversarial"};

    const std::vector<std::string> errors = request.validate();
    std::string all;
    for (const std::string &e : errors)
        all += e + "\n";

    EXPECT_GE(errors.size(), 5u) << all;
    EXPECT_NE(all.find("malformed topology 'mesh'"),
              std::string::npos)
        << all;
    EXPECT_NE(all.find("unknown topology family 'blob'"),
              std::string::npos)
        << all;
    EXPECT_NE(all.find("unknown algorithm 'warp-speed'"),
              std::string::npos)
        << all;
    // nf-torus is real but not certified for the mesh family.
    EXPECT_NE(all.find("obligation table"), std::string::npos)
        << all;
    EXPECT_NE(all.find("unknown selection policy 'greedy'"),
              std::string::npos)
        << all;
    EXPECT_NE(all.find("unknown traffic 'noise'"),
              std::string::npos)
        << all;
}

TEST(AnalyzeRequest, AdversarialNeedsARegisteredAdversary)
{
    AnalyzeRequest request;
    request.topologies = {"hypercube(3)"};
    request.algorithms = {"p-cube"};
    request.traffics = {"adversarial"};
    const std::vector<std::string> errors = request.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("no adversarial workload"),
              std::string::npos);
}

using AnalyzeDeathTest = ::testing::Test;

TEST(AnalyzeDeathTest, ValidateOrDieReportsAllProblemsAtOnce)
{
    // The fatal surface carries the same multi-error report as the
    // non-fatal one: both named problems must appear in one message.
    AnalyzeRequest request;
    request.algorithms = {"warp-speed"};
    request.policies = {"greedy"};
    EXPECT_DEATH(request.validateOrDie(),
                 "2 problems(.|\n)*warp-speed(.|\n)*greedy");
}

TEST(AnalyzeDeathTest, UnknownPolicyNameIsFatalWithTheRegistry)
{
    EXPECT_DEATH(makeSelectionPolicy("no-such-policy"),
                 "unknown selection policy(.|\n)*lowest-dim");
}

} // namespace
} // namespace turnnet
