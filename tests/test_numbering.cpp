/**
 * @file
 * The deadlock-freedom proofs of Theorems 2 and 5, run as property
 * tests: the channel numberings they construct must be strictly
 * monotone along every transition the routing relations permit.
 */

#include <gtest/gtest.h>

#include "turnnet/routing/fully_adaptive.hpp"
#include "turnnet/routing/negative_first.hpp"
#include "turnnet/routing/torus_extensions.hpp"
#include "turnnet/routing/west_first.hpp"
#include "turnnet/routing/dimension_order.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/turnmodel/numbering.hpp"

namespace turnnet {
namespace {

TEST(Theorem2, WestFirstFollowsStrictlyDecreasingNumbers)
{
    const WestFirstNumbering numbering;
    const WestFirst west_first;
    for (const auto &[w, h] :
         {std::pair{4, 4}, {8, 8}, {5, 3}, {3, 7}}) {
        const Mesh mesh(w, h);
        MonotonicViolation v;
        EXPECT_TRUE(verifyMonotonic(mesh, west_first, numbering, &v))
            << mesh.name() << ": channel " << v.in << " -> " << v.out
            << " for dest " << v.dest;
    }
}

TEST(Theorem2, XyAlsoFollowsTheWestFirstNumbering)
{
    // xy's permitted turns are a subset of west-first's, so the same
    // numbering witnesses its deadlock freedom.
    const WestFirstNumbering numbering;
    const DimensionOrder xy("xy");
    EXPECT_TRUE(verifyMonotonic(Mesh(6, 6), xy, numbering));
}

TEST(Theorem2, FullyAdaptiveViolatesTheNumbering)
{
    const WestFirstNumbering numbering;
    const FullyAdaptive adaptive;
    const Mesh mesh(4, 4);
    MonotonicViolation v;
    EXPECT_FALSE(verifyMonotonic(mesh, adaptive, numbering, &v));
    // The counterexample is a real transition on real channels.
    EXPECT_NE(v.in, kInvalidChannel);
    EXPECT_NE(v.out, kInvalidChannel);
    EXPECT_EQ(mesh.channel(v.in).dst, mesh.channel(v.out).src);
}

TEST(Theorem2, NumberingKeysMatchConstruction)
{
    // Westward channels sit above all others and decrease westward;
    // within the non-west tier, keys decrease eastward.
    const Mesh mesh(4, 4);
    const WestFirstNumbering numbering;

    const ChannelId west_from_3 =
        mesh.channelFrom(mesh.nodeOf({3, 1}), Direction::negative(0));
    const ChannelId west_from_2 =
        mesh.channelFrom(mesh.nodeOf({2, 1}), Direction::negative(0));
    const ChannelId east_from_0 =
        mesh.channelFrom(mesh.nodeOf({0, 1}), Direction::positive(0));
    const ChannelId east_from_2 =
        mesh.channelFrom(mesh.nodeOf({2, 1}), Direction::positive(0));
    const ChannelId north_col_0 =
        mesh.channelFrom(mesh.nodeOf({0, 1}), Direction::positive(1));

    EXPECT_GT(numbering.key(mesh, west_from_3),
              numbering.key(mesh, west_from_2));
    EXPECT_GT(numbering.key(mesh, west_from_2),
              numbering.key(mesh, east_from_0));
    EXPECT_GT(numbering.key(mesh, east_from_0),
              numbering.key(mesh, east_from_2));
    // Vertical channels of a column sit above the eastward channel
    // leaving it.
    EXPECT_GT(numbering.key(mesh, north_col_0),
              numbering.key(mesh, east_from_0));
}

TEST(Theorem5, NegativeFirstFollowsStrictlyIncreasingNumbers)
{
    const NegativeFirstNumbering numbering;
    const NegativeFirst nf;
    EXPECT_TRUE(verifyMonotonic(Mesh(6, 6), nf, numbering));
    EXPECT_TRUE(verifyMonotonic(Mesh(std::vector<int>{3, 4, 3}), nf,
                                numbering));
    EXPECT_TRUE(verifyMonotonic(Mesh(std::vector<int>{4, 3}), nf,
                                numbering));
}

TEST(Theorem5, PcubeOnHypercubesFollowsTheNumbering)
{
    const NegativeFirstNumbering numbering;
    const NegativeFirst nf;
    EXPECT_TRUE(verifyMonotonic(Hypercube(4), nf, numbering));
    EXPECT_TRUE(verifyMonotonic(Hypercube(6), nf, numbering));
}

TEST(Theorem5, NonminimalNegativeFirstAlsoMonotone)
{
    // The proof does not depend on minimality: the nonminimal
    // variant routes along strictly increasing numbers too, which is
    // what makes it livelock free (Section 2).
    const NegativeFirstNumbering numbering;
    const NegativeFirst nf_nonminimal(false);
    EXPECT_TRUE(verifyMonotonic(Mesh(4, 4), nf_nonminimal, numbering));
    EXPECT_TRUE(
        verifyMonotonic(Hypercube(4), nf_nonminimal, numbering));
}

TEST(Theorem5, KeysAreKMinusNPlusMinusX)
{
    const Mesh mesh(4, 4); // K = 8, n = 2, K - n = 6
    const NegativeFirstNumbering numbering;
    const NodeId node = mesh.nodeOf({2, 1}); // X = 3
    const ChannelId pos =
        mesh.channelFrom(node, Direction::positive(0));
    const ChannelId neg =
        mesh.channelFrom(node, Direction::negative(1));
    EXPECT_EQ(numbering.key(mesh, pos), 6u + 3u);
    EXPECT_EQ(numbering.key(mesh, neg), 6u - 3u);
}

TEST(Section42, ClassifiedWrapNumberingCoversTheTorus)
{
    // The K - n +- X numbering classifies wraparound channels by
    // coordinate change, witnessing deadlock freedom of the
    // negative-first torus extension.
    const NegativeFirstNumbering numbering;
    const NegativeFirstTorus nf_torus;
    EXPECT_TRUE(verifyMonotonic(Torus(4, 2), nf_torus, numbering));
    EXPECT_TRUE(verifyMonotonic(Torus(5, 2), nf_torus, numbering));
    EXPECT_TRUE(
        verifyMonotonic(Torus(std::vector<int>{3, 4, 3}), nf_torus,
                        numbering));
}

TEST(Section42, WrapChannelsClassifyByCoordinateChange)
{
    const Torus torus(4, 2);
    const NegativeFirstNumbering numbering;
    // The wrap channel out of (3,0) through the positive port lands
    // at (0,0): coordinate decreases, so it is numbered like a
    // negative channel: K - n - X = 8 - 2 - 3 = 3.
    const ChannelId wrap = torus.channelFrom(
        torus.nodeOf({3, 0}), Direction::positive(0));
    ASSERT_TRUE(torus.channel(wrap).wrap);
    EXPECT_EQ(numbering.key(torus, wrap), 3u);
}

} // namespace
} // namespace turnnet
