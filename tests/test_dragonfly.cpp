/**
 * @file
 * Dragonfly topology tests: the balanced a*h+1-group construction,
 * bidirectional consistency of the global link pairing, the skip-self
 * local all-to-all, minimal distances (local 1, global l-g-l at most
 * 3), and the hierarchical channel classes behind certification.
 */

#include <gtest/gtest.h>

#include "turnnet/topology/dragonfly.hpp"

namespace turnnet {
namespace {

TEST(Dragonfly, BalancedConstruction)
{
    const Dragonfly df(4, 2, 2);
    EXPECT_EQ(df.numGroups(), 9); // a*h + 1
    EXPECT_EQ(df.numNodes(), 36);
    EXPECT_EQ(df.routersPerGroup(), 4);
    EXPECT_EQ(df.terminalsPerRouter(), 2);
    EXPECT_EQ(df.globalsPerRouter(), 2);
    EXPECT_EQ(df.numPorts(), 5); // a-1 local + h global
    EXPECT_EQ(df.name(), "dragonfly(4,2,2)");
    // Every router is an endpoint (terminals are concentration
    // metadata, not nodes).
    for (NodeId n = 0; n < df.numNodes(); ++n)
        EXPECT_TRUE(df.isEndpoint(n));
    EXPECT_EQ(df.numEndpoints(), df.numNodes());
}

TEST(Dragonfly, LocalAllToAllSkipSelfEncoding)
{
    const Dragonfly df(4, 1, 1);
    for (int g = 0; g < df.numGroups(); ++g) {
        for (int r = 0; r < 4; ++r) {
            const NodeId node = df.nodeAt(g, r);
            // Every other router of the group is exactly one local
            // hop away, through the direction localDirTo names.
            for (int t = 0; t < 4; ++t) {
                if (t == r)
                    continue;
                const NodeId peer = df.nodeAt(g, t);
                EXPECT_EQ(df.neighbor(node, df.localDirTo(r, t)),
                          peer);
                EXPECT_EQ(df.distance(node, peer), 1);
            }
        }
    }
}

TEST(Dragonfly, GlobalPairingIsBidirectionallyConsistent)
{
    // The unique global channel between two groups must terminate at
    // the gateway the reverse lookup names, in both directions.
    const Dragonfly df(4, 2, 2);
    for (int g1 = 0; g1 < df.numGroups(); ++g1) {
        for (int g2 = 0; g2 < df.numGroups(); ++g2) {
            if (g1 == g2)
                continue;
            const NodeId a =
                df.nodeAt(g1, df.gatewayRouter(g1, g2));
            const NodeId b =
                df.nodeAt(g2, df.gatewayRouter(g2, g1));
            EXPECT_EQ(
                df.neighbor(a,
                            df.globalDir(df.gatewayPort(g1, g2))),
                b);
            EXPECT_EQ(
                df.neighbor(b,
                            df.globalDir(df.gatewayPort(g2, g1))),
                a);
        }
    }
}

TEST(Dragonfly, EveryGlobalPortLandsInADistinctGroup)
{
    const Dragonfly df(4, 2, 2);
    // Across one group's a*h global ports, every other group appears
    // exactly once (the balanced maximum-size pairing).
    for (int g = 0; g < df.numGroups(); ++g) {
        std::vector<int> seen(df.numGroups(), 0);
        for (int r = 0; r < df.routersPerGroup(); ++r) {
            for (int j = 0; j < df.globalsPerRouter(); ++j) {
                const NodeId peer = df.neighbor(
                    df.nodeAt(g, r), df.globalDir(j));
                ASSERT_NE(peer, kInvalidNode);
                ++seen[df.groupOf(peer)];
            }
        }
        for (int t = 0; t < df.numGroups(); ++t)
            EXPECT_EQ(seen[t], t == g ? 0 : 1) << "group " << t;
    }
}

TEST(Dragonfly, MinimalDistances)
{
    const Dragonfly df(4, 2, 2);
    int max_dist = 0;
    for (NodeId a = 0; a < df.numNodes(); ++a) {
        for (NodeId b = 0; b < df.numNodes(); ++b) {
            const int d = df.distance(a, b);
            if (a == b) {
                EXPECT_EQ(d, 0);
                continue;
            }
            EXPECT_GE(d, 1);
            // Minimal dragonfly paths are at most local-global-local.
            EXPECT_LE(d, 3);
            max_dist = std::max(max_dist, d);
            // minimalDirections must make progress: every named
            // direction strictly shortens the distance. (Strictly,
            // not by exactly one: distance() is the canonical
            // l-g-l route length, and a global hop into a group
            // whose gateway to the destination group is the
            // destination itself shortens it by two.)
            const DirectionSet dirs = df.minimalDirections(a, b);
            EXPECT_FALSE(dirs.empty());
            dirs.forEach([&](Direction dir) {
                const NodeId next = df.neighbor(a, dir);
                ASSERT_NE(next, kInvalidNode);
                EXPECT_LT(df.distance(next, b), d);
            });
        }
    }
    EXPECT_EQ(max_dist, 3);
}

TEST(Dragonfly, ChannelClassesAndNames)
{
    const Dragonfly df(4, 2, 2);
    int locals = 0;
    int globals = 0;
    for (ChannelId c = 0; c < df.numChannels(); ++c) {
        const ChannelClass cc = df.channelClass(c);
        if (cc.level == 0) {
            EXPECT_EQ(cc.tag, "local");
            ++locals;
        } else {
            EXPECT_EQ(cc.level, 1);
            EXPECT_EQ(cc.tag, "global");
            ++globals;
        }
    }
    // Local: a*(a-1) per group; global: a*h per group, both
    // unidirectional counts.
    EXPECT_EQ(locals, 9 * 4 * 3);
    EXPECT_EQ(globals, 9 * 4 * 2);

    EXPECT_EQ(df.dirName(Direction::fromIndex(0)), "local0");
    EXPECT_EQ(df.dirName(df.globalDir(0)), "global0");
    EXPECT_EQ(df.nodeName(df.nodeAt(2, 3)), "g2.r3");
}

TEST(Dragonfly, MinimalFabric)
{
    // dragonfly(2,1,1): 3 groups of 2, the smallest legal fabric and
    // the certifier's novc witness shape.
    const Dragonfly df(2, 1, 1);
    EXPECT_EQ(df.numGroups(), 3);
    EXPECT_EQ(df.numNodes(), 6);
    EXPECT_EQ(df.numPorts(), 2);
    for (NodeId a = 0; a < df.numNodes(); ++a)
        for (NodeId b = 0; b < df.numNodes(); ++b)
            EXPECT_LE(df.distance(a, b), 3);
}

} // namespace
} // namespace turnnet
