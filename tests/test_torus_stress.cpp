/**
 * @file
 * Torus saturation stress: the wraparound algorithms must survive a
 * near-saturation workload of very long worms — the configuration
 * that wedges an unrestricted fabric within a few thousand cycles —
 * without ever tripping the deadlock watchdog, and the post-run
 * forensics must find no cyclic wait-for chain on the live fabric.
 * Wrap channels are exactly where naive dimension-order reasoning
 * breaks (the extra dependency closes the ring), so this is the
 * regression net for every torus-specific prohibition and for the
 * dateline virtual-channel scheme, on both cycle-loop engines.
 */

#include <gtest/gtest.h>

#include "turnnet/network/engine.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/trace/forensics.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

/** Near-saturation workload: long worms at half injection rate, a
 *  tight watchdog, and a measurement window several watchdog
 *  periods long (the deadlock_demo stress, pointed at a torus). */
/** Every engine configuration under stress: serial engines plus the
 *  sharded engine at an even and an uneven (non-dividing) width. */
constexpr std::pair<SimEngine, unsigned> kEngineCases[] = {
    {SimEngine::Reference, 0}, {SimEngine::Fast, 0},
    {SimEngine::Batch, 0},     {SimEngine::Sharded, 2},
    {SimEngine::Sharded, 7}};

std::string
engineCaseName(SimEngine engine, unsigned shards)
{
    std::string name = EngineRegistry::instance().at(engine).name;
    if (shards != 0)
        name += "/s" + std::to_string(shards);
    return name;
}

SimConfig
stressConfig(SimEngine engine, unsigned shards = 0)
{
    SimConfig config;
    config.shards = shards;
    config.load = 0.5;
    config.lengths = MessageLengthMix::fixed(200);
    config.watchdogCycles = 8000;
    config.warmupCycles = 100;
    config.measureCycles = 40000;
    config.drainCycles = 100;
    config.seed = 3;
    config.engine = engine;
    return config;
}

/** Run to completion, then put the still-loaded fabric under the
 *  forensics lens: no watchdog verdict and no wait cycle. */
void
expectSurvivesSaturation(const Torus &torus, Simulator &sim,
                         const char *label)
{
    const SimResult result = sim.run();
    EXPECT_FALSE(result.deadlocked) << label;
    EXPECT_GT(result.packetsFinished, 0u) << label;

    const DeadlockReport report = collectDeadlockForensics(sim);
    EXPECT_TRUE(report.waitCycle.empty())
        << label << ": forensics found a cyclic wait-for chain on "
        << "a fabric the watchdog cleared";
    EXPECT_FALSE(report.routingCdgCyclic) << label;
    (void)torus;
}

TEST(TorusStress, WraparoundAlgorithmsSurviveSaturation)
{
    const Torus torus(std::vector<int>{4, 4});
    for (const char *alg :
         {"nf-torus", "xy-first-hop-wrap", "nf-first-hop-wrap"}) {
        for (const auto &[engine, shards] : kEngineCases) {
            SCOPED_TRACE(std::string(alg) + " engine " +
                         engineCaseName(engine, shards));
            Simulator sim(torus, makeRouting({.name = alg}),
                          makeTraffic("uniform", torus),
                          stressConfig(engine, shards));
            expectSurvivesSaturation(torus, sim, alg);
        }
    }
}

TEST(TorusStress, DatelineVcSchemeSurvivesSaturation)
{
    // The classic alternative to restricting turns: break the wrap
    // dependency with a second virtual channel at the dateline.
    const Torus torus(std::vector<int>{4, 4});
    for (const auto &[engine, shards] : kEngineCases) {
        SCOPED_TRACE(engineCaseName(engine, shards));
        Simulator sim(torus, makeVcRouting({.name = "dateline"}),
                      makeTraffic("uniform", torus),
                      stressConfig(engine, shards));
        expectSurvivesSaturation(torus, sim, "dateline");
    }
}

} // namespace
} // namespace turnnet
