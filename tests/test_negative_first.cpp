/**
 * @file
 * Behavioral tests for negative-first routing (Sections 3.3, 4.1)
 * and its n-dimensional siblings ABONF and ABOPL.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/routing/abonf.hpp"
#include "turnnet/routing/abopl.hpp"
#include "turnnet/routing/negative_first.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

const Direction kWest = Direction::negative(0);
const Direction kEast = Direction::positive(0);
const Direction kSouth = Direction::negative(1);
const Direction kNorth = Direction::positive(1);

class NegativeFirstTest : public ::testing::Test
{
  protected:
    Mesh mesh_{8, 8};
    NegativeFirst nf_;
};

TEST_F(NegativeFirstTest, BothNegativeIsFullyAdaptive)
{
    const NodeId src = mesh_.nodeOf({5, 5});
    const NodeId dst = mesh_.nodeOf({2, 1});
    const DirectionSet dirs =
        nf_.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(kWest));
    EXPECT_TRUE(dirs.contains(kSouth));
}

TEST_F(NegativeFirstTest, BothPositiveIsFullyAdaptive)
{
    const NodeId src = mesh_.nodeOf({2, 2});
    const NodeId dst = mesh_.nodeOf({5, 6});
    const DirectionSet dirs =
        nf_.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(kEast));
    EXPECT_TRUE(dirs.contains(kNorth));
}

TEST_F(NegativeFirstTest, MixedQuadrantHasOnePath)
{
    // Northwest destination: west first (the only negative need),
    // then north. One minimal path.
    const NodeId src = mesh_.nodeOf({5, 2});
    const NodeId dst = mesh_.nodeOf({2, 6});
    const DirectionSet dirs =
        nf_.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 1);
    EXPECT_TRUE(dirs.contains(kWest));
    EXPECT_EQ(countPaths(mesh_, nf_, src, dst), 1.0);
    EXPECT_EQ(pathsNegativeFirst(mesh_, src, dst), 1.0);
}

TEST_F(NegativeFirstTest, PositiveArrivalRestrictsToPositives)
{
    // Once travelling east (positive phase), a packet can never go
    // west or south again.
    const NodeId at = mesh_.nodeOf({4, 4});
    for (NodeId d = 0; d < mesh_.numNodes(); ++d) {
        if (d == at)
            continue;
        nf_.route(mesh_, at, d, kEast).forEach([&](Direction o) {
            EXPECT_TRUE(o.isPositive());
        });
    }
}

TEST(Abonf, PhaseOneIsNegativesOfAllButLastDimension)
{
    const AllButOneNegativeFirst abonf;
    EXPECT_EQ(abonf.phaseOne(3).toString(), "{west, south}");
    EXPECT_EQ(abonf.phaseOne(2).toString(), "{west}");
}

TEST(Abopl, PhaseOneIsNegativesPlusPositiveDim0)
{
    const AllButOnePositiveLast abopl;
    const DirectionSet p1 = abopl.phaseOne(3);
    EXPECT_EQ(p1.size(), 4);
    EXPECT_TRUE(p1.contains(Direction::positive(0)));
    EXPECT_TRUE(p1.contains(Direction::negative(0)));
    EXPECT_TRUE(p1.contains(Direction::negative(1)));
    EXPECT_TRUE(p1.contains(Direction::negative(2)));
}

TEST(Abonf, RoutesPhaseOneBeforePhaseTwoIn3D)
{
    const Mesh mesh({4, 4, 4});
    const AllButOneNegativeFirst abonf;
    // Needs -d0, -d1 (phase one) and +d2 (phase two): only the
    // negatives are offered first, adaptively.
    const NodeId src = mesh.nodeOf({3, 3, 0});
    const NodeId dst = mesh.nodeOf({1, 1, 3});
    const DirectionSet dirs =
        abonf.route(mesh, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(Direction::negative(0)));
    EXPECT_TRUE(dirs.contains(Direction::negative(1)));

    // Needs -d2 (phase two for ABONF) and +d0: both are phase two,
    // so both are offered.
    const NodeId src2 = mesh.nodeOf({0, 2, 3});
    const NodeId dst2 = mesh.nodeOf({2, 2, 1});
    const DirectionSet dirs2 =
        abonf.route(mesh, src2, dst2, Direction::local());
    EXPECT_EQ(dirs2.size(), 2);
    EXPECT_TRUE(dirs2.contains(Direction::positive(0)));
    EXPECT_TRUE(dirs2.contains(Direction::negative(2)));
}

TEST(Abopl, PositivePhaseIsAdaptiveAmongHighDims)
{
    const Mesh mesh({4, 4, 4});
    const AllButOnePositiveLast abopl;
    // Needs +d1 and +d2 only: both are phase two and adaptive.
    const NodeId src = mesh.nodeOf({2, 0, 0});
    const NodeId dst = mesh.nodeOf({2, 3, 3});
    const DirectionSet dirs =
        abopl.route(mesh, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(Direction::positive(1)));
    EXPECT_TRUE(dirs.contains(Direction::positive(2)));

    // Needs -d1 and +d2: the negative (phase one) comes first.
    const NodeId dst2 = mesh.nodeOf({2, 0, 3});
    const NodeId src2 = mesh.nodeOf({2, 3, 0});
    const DirectionSet dirs2 =
        abopl.route(mesh, src2, dst2, Direction::local());
    EXPECT_EQ(dirs2.size(), 1);
    EXPECT_TRUE(dirs2.contains(Direction::negative(1)));
}

TEST(NegativeFirstND, PathCountIsProductOfLegMultinomials)
{
    const Mesh mesh({4, 4, 4});
    const NegativeFirst nf;
    // deltas (-2, -1, +2): negative leg C(3,2)=3 orders... the
    // multinomial 3!/2!1! = 3; positive leg 1. Total 3.
    const NodeId src = mesh.nodeOf({3, 1, 0});
    const NodeId dst = mesh.nodeOf({1, 0, 2});
    EXPECT_EQ(countPaths(mesh, nf, src, dst), 3.0);
    EXPECT_EQ(pathsNegativeFirst(mesh, src, dst), 3.0);
    // deltas (+1, +2, +1): single positive leg 4!/1!2!1! = 12.
    const NodeId dst2 = mesh.nodeOf({3, 3, 3});
    const NodeId src2 = mesh.nodeOf({2, 1, 2});
    EXPECT_EQ(countPaths(mesh, nf, src2, dst2), 12.0);
}

TEST(NegativeFirstND, NonminimalStillRefusesStrandingHops)
{
    const Mesh mesh(6, 6);
    const NegativeFirst nf_nm(false);
    // Destination strictly northeast (positive phase): a southward
    // detour would be legal turn-wise from injection, and safe —
    // south keeps the packet in phase one.
    const NodeId src = mesh.nodeOf({2, 2});
    const NodeId dst = mesh.nodeOf({4, 4});
    const DirectionSet dirs =
        nf_nm.route(mesh, src, dst, Direction::local());
    EXPECT_TRUE(dirs.contains(kSouth));
    EXPECT_TRUE(dirs.contains(kWest));
    // But once travelling east, unproductive positives that
    // overshoot the destination row/column are refused because the
    // packet could never come back.
    const DirectionSet from_east =
        nf_nm.route(mesh, mesh.nodeOf({4, 2}), mesh.nodeOf({4, 4}),
                    kEast);
    EXPECT_TRUE(from_east.contains(kNorth));
    EXPECT_FALSE(from_east.contains(kEast)); // would overshoot x=4
    EXPECT_FALSE(from_east.contains(kWest));
    EXPECT_FALSE(from_east.contains(kSouth));
}

} // namespace
} // namespace turnnet
