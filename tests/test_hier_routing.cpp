/**
 * @file
 * Hierarchical routing tests: the dragonfly relations (minimal,
 * Valiant, UGAL-L) and fat-tree NCA up*-down* routing, each driven
 * through the static certifier — the paper-shaped positive cases must
 * synthesize a verified Dally-Seitz numbering, and the deliberately
 * broken single-VC dragonfly must be refuted with a concrete minimal
 * cycle witness.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "turnnet/routing/dragonfly_routing.hpp"
#include "turnnet/routing/fattree_routing.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/dragonfly.hpp"
#include "turnnet/topology/fat_tree.hpp"
#include "turnnet/verify/certify.hpp"

namespace turnnet {
namespace {

TEST(HierRouting, DragonflyModesDeclareTheirVcBudget)
{
    EXPECT_EQ(DragonflyRouting(DragonflyRouting::Mode::Min).numVcs(),
              2);
    EXPECT_EQ(DragonflyRouting(DragonflyRouting::Mode::Val).numVcs(),
              3);
    EXPECT_EQ(DragonflyRouting(DragonflyRouting::Mode::Ugal).numVcs(),
              3);
    EXPECT_EQ(DragonflyRouting(DragonflyRouting::Mode::NoVc).numVcs(),
              1);
    EXPECT_EQ(makeVcRouting({.name = "dragonfly-min"})->name(),
              "dragonfly-min");
    EXPECT_EQ(makeVcRouting({.name = "dragonfly-ugal"})->numVcs(), 3);
}

TEST(HierRouting, DragonflyMinimalFollowsTheGatewayChain)
{
    const Dragonfly df(4, 2, 2);
    const DragonflyRouting min(DragonflyRouting::Mode::Min);
    std::vector<VcCandidate> out;

    // Same-group hop: the direct local direction, on the last VC.
    const NodeId src = df.nodeAt(0, 0);
    min.route(df, src, df.nodeAt(0, 2), Direction::local(), 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].dir, df.localDirTo(0, 2));
    EXPECT_EQ(out[0].vc, 1);

    // Cross-group from a non-gateway router: the local hop to the
    // gateway, on the minimal phase's VC 0.
    const NodeId dest = df.nodeAt(5, 1);
    const int gw = df.gatewayRouter(0, 5);
    out.clear();
    min.route(df, df.nodeAt(0, gw == 0 ? 1 : 0), dest,
              Direction::local(), 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vc, 0);
    EXPECT_EQ(df.neighbor(df.nodeAt(0, gw == 0 ? 1 : 0), out[0].dir),
              df.nodeAt(0, gw));

    // At the gateway: the global channel into the destination group.
    out.clear();
    min.route(df, df.nodeAt(0, gw), dest, Direction::local(), 0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(df.groupOf(df.neighbor(df.nodeAt(0, gw), out[0].dir)),
              5);
}

TEST(HierRouting, DragonflyValiantMisroutesFromInjection)
{
    const Dragonfly df(4, 2, 2);
    const DragonflyRouting val(DragonflyRouting::Mode::Val);
    std::vector<VcCandidate> out;

    // Injection toward another group: every candidate is a VC-0
    // spread hop, and none of them is the minimal gateway chain's
    // next node.
    const NodeId src = df.nodeAt(0, 0);
    const NodeId dest = df.nodeAt(5, 1);
    val.route(df, src, dest, Direction::local(), 0, out);
    ASSERT_FALSE(out.empty());
    for (const VcCandidate &c : out) {
        EXPECT_EQ(c.vc, 0);
        const NodeId next = df.neighbor(src, c.dir);
        ASSERT_NE(next, kInvalidNode);
        // A spread global hop never lands in the destination group.
        if (df.isGlobalPort(c.dir.index())) {
            EXPECT_NE(df.groupOf(next), 5);
        }
    }

    // UGAL offers the same spread *plus* the minimal candidate on
    // VC 1 — the router's misroute threshold arbitrates.
    const DragonflyRouting ugal(DragonflyRouting::Mode::Ugal);
    std::vector<VcCandidate> ugal_out;
    ugal.route(df, src, dest, Direction::local(), 0, ugal_out);
    EXPECT_EQ(ugal_out.size(), out.size() + 1);
    int minimal_vc1 = 0;
    for (const VcCandidate &c : ugal_out)
        if (c.vc == 1)
            ++minimal_vc1;
    EXPECT_EQ(minimal_vc1, 1);
}

TEST(HierRouting, FatTreeNcaClimbsThenDescends)
{
    const FatTree ft(2, 3);
    const FatTreeNca nca;

    // From a terminal: the single up port.
    DirectionSet dirs = nca.route(ft, 0, 5, Direction::local());
    EXPECT_EQ(dirs, DirectionSet(ft.upDir(0)));

    // At the leaf switch below terminal 0, destination 5 (NCA rank
    // 2): not an ancestor, so every up port is offered — that is the
    // relation's adaptivity.
    const NodeId leaf = ft.switchId(0, 0);
    dirs = nca.route(ft, leaf, 5, ft.upDir(0));
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(ft.upDir(0)));
    EXPECT_TRUE(dirs.contains(ft.upDir(1)));

    // At an ancestor: the unique down digit, nothing else.
    dirs = nca.route(ft, leaf, 1, ft.upDir(0));
    EXPECT_EQ(dirs, DirectionSet(ft.downDir(1)));
    const NodeId top = ft.switchId(2, 0);
    dirs = nca.route(ft, top, 5, ft.upDir(0));
    EXPECT_EQ(dirs.size(), 1);
    const NodeId next = ft.neighbor(top, dirs.first());
    EXPECT_EQ(ft.distance(next, 5), ft.distance(top, 5) - 1);
}

TEST(HierRouting, CertifierAcceptsEveryDragonflyVcScheme)
{
    for (const char *algo :
         {"dragonfly-min", "dragonfly-val", "dragonfly-ugal"}) {
        const CertifyCaseResult r = runCertifyCase(
            {"dragonfly(4,2,2)", algo, /*vc=*/true});
        SCOPED_TRACE(algo);
        EXPECT_TRUE(r.pass);
        EXPECT_TRUE(r.certificate.deadlockFree);
        EXPECT_TRUE(r.certificate.numberingVerified);
        EXPECT_TRUE(r.witnessText.empty());
        EXPECT_EQ(r.topologyName, "dragonfly(4,2,2)");
        // The numbering covers the full (channel, vc) space.
        EXPECT_EQ(r.certificate.numbering.size(),
                  r.certificate.numVertices);
    }
}

TEST(HierRouting, CertifierAcceptsFatTreeNcaAtBothShapes)
{
    for (const char *topo : {"fat-tree(2,3)", "fat-tree(4,2)"}) {
        const CertifyCaseResult r =
            runCertifyCase({topo, "fattree-nca"});
        SCOPED_TRACE(topo);
        EXPECT_TRUE(r.pass);
        EXPECT_TRUE(r.certificate.deadlockFree);
        EXPECT_TRUE(r.certificate.numberingVerified);
        EXPECT_TRUE(r.witnessText.empty());
    }
}

TEST(HierRouting, CertifierRefutesSingleVcDragonflyWithWitness)
{
    const CertifyCaseResult r =
        runCertifyCase({"dragonfly(2,1,1)", "dragonfly-novc",
                        /*vc=*/true, /*expectDeadlockFree=*/false});
    // The rejection is the expected verdict, so the case passes.
    EXPECT_TRUE(r.pass);
    EXPECT_FALSE(r.certificate.deadlockFree);
    ASSERT_FALSE(r.certificate.witness.empty());
    // Single-VC relation: every witness hop runs on VC 0.
    for (const auto &hop : r.certificate.witness)
        EXPECT_EQ(hop.second, 0);
    // The rendered chain names real channels and closes.
    EXPECT_FALSE(r.witnessText.empty());
    EXPECT_NE(r.witnessText.find("closes the cycle"),
              std::string::npos);
    // The cycle crosses groups: at least one hop rides a global
    // channel (the local->global chain across three groups).
    const Dragonfly df(2, 1, 1);
    bool any_global = false;
    for (const auto &hop : r.certificate.witness)
        any_global = any_global ||
                     df.channelClass(hop.first).level == 1;
    EXPECT_TRUE(any_global);
}

TEST(HierRouting, MakeCaseTopologyResolvesTheCompactGrammar)
{
    EXPECT_EQ(makeCaseTopology({"dragonfly(4,2,2)", "dragonfly-min",
                                /*vc=*/true})
                  ->numNodes(),
              36);
    EXPECT_EQ(
        makeCaseTopology({"fat-tree(2,3)", "fattree-nca"})->name(),
        "fat-tree(2,3)");
}

TEST(HierRoutingDeath, CheckTopologyIsFatalOffFamily)
{
    const FatTree ft(2, 2);
    const Dragonfly df(2, 1, 1);
    EXPECT_DEATH(
        DragonflyRouting(DragonflyRouting::Mode::Min)
            .checkTopology(ft),
        "dragonfly");
    EXPECT_DEATH(FatTreeNca().checkTopology(df), "fat-tree");
}

} // namespace
} // namespace turnnet
