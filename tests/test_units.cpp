/**
 * @file
 * Tests for the switching micro-state: flit buffers, source queues,
 * input/output units, packet table, and network wiring.
 */

#include <gtest/gtest.h>

#include "turnnet/network/network.hpp"
#include "turnnet/network/packet.hpp"
#include "turnnet/network/source_queue.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

TEST(FlitBuffer, FifoOrderAndCapacity)
{
    FlitStore store(1, 2);
    FlitBuffer buf(store, 0);
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.full());

    Flit a;
    a.packet = 1;
    a.seq = 0;
    Flit b;
    b.packet = 1;
    b.seq = 1;
    buf.push(a, 10);
    buf.push(b, 11);
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.size(), 2u);

    const FlitBuffer::Entry first = buf.pop();
    EXPECT_EQ(first.flit.seq, 0u);
    EXPECT_EQ(first.arrival, 10u);
    EXPECT_EQ(buf.pop().flit.seq, 1u);
    EXPECT_TRUE(buf.empty());
}

TEST(FlitBufferDeath, OverflowAndUnderflow)
{
    FlitStore store(1, 1);
    FlitBuffer buf(store, 0);
    buf.push(Flit{}, 0);
    EXPECT_DEATH(buf.push(Flit{}, 1), "overflow");
    buf.pop();
    EXPECT_DEATH(buf.pop(), "empty");
}

TEST(FlitStore, RingWrapsAndTracksTotal)
{
    FlitStore store(2, 3);
    EXPECT_EQ(store.totalFlits(), 0u);
    // Fill, half-drain, refill: the ring head wraps while FIFO
    // order and the fabric-wide total stay exact.
    for (std::uint32_t s = 0; s < 3; ++s) {
        Flit f;
        f.packet = 7;
        f.seq = s;
        store.push(0, f, s);
    }
    EXPECT_TRUE(store.full(0));
    EXPECT_EQ(store.totalFlits(), 3u);
    store.pop(0);
    store.pop(0);
    for (std::uint32_t s = 3; s < 5; ++s) {
        Flit f;
        f.packet = 7;
        f.seq = s;
        store.push(0, f, s);
    }
    EXPECT_EQ(store.size(0), 3u);
    for (std::uint32_t s = 2; s < 5; ++s) {
        EXPECT_EQ(store.frontFlit(0).seq, s);
        EXPECT_EQ(store.frontArrival(0), s);
        store.pop(0);
    }
    EXPECT_TRUE(store.empty(0));
    EXPECT_EQ(store.totalFlits(), 0u);
}

TEST(FlitStore, RemovePacketCompactsAcrossTheWrap)
{
    FlitStore store(1, 4);
    // Wrap the ring so survivors straddle the array boundary.
    store.push(0, Flit{}, 0);
    store.pop(0);
    const PacketId doomed = 5;
    for (std::uint32_t s = 0; s < 4; ++s) {
        Flit f;
        f.packet = (s % 2 == 0) ? doomed : 9;
        f.seq = s;
        store.push(0, f, s);
    }
    EXPECT_EQ(store.removePacket(0, doomed), 2u);
    EXPECT_EQ(store.size(0), 2u);
    EXPECT_EQ(store.totalFlits(), 2u);
    EXPECT_EQ(store.flitAt(0, 0).seq, 1u);
    EXPECT_EQ(store.flitAt(0, 1).seq, 3u);
    EXPECT_EQ(store.arrivalAt(0, 1), 3u);
}

TEST(SourceQueue, SynthesizesHeadBodyTail)
{
    SourceQueue q;
    q.enqueue(42, 9, 3);
    EXPECT_EQ(q.packetCount(), 1u);
    EXPECT_EQ(q.flitCount(), 3u);

    const Flit head = q.nextFlit();
    EXPECT_TRUE(head.head);
    EXPECT_FALSE(head.tail);
    EXPECT_EQ(head.packet, 42u);
    EXPECT_EQ(head.dest, 9);
    EXPECT_EQ(head.seq, 0u);

    const Flit body = q.nextFlit();
    EXPECT_FALSE(body.head);
    EXPECT_FALSE(body.tail);

    const Flit tail = q.nextFlit();
    EXPECT_TRUE(tail.tail);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.flitCount(), 0u);
}

TEST(SourceQueue, SingleFlitPacketIsHeadAndTail)
{
    SourceQueue q;
    q.enqueue(1, 2, 1);
    const Flit only = q.nextFlit();
    EXPECT_TRUE(only.head);
    EXPECT_TRUE(only.tail);
}

TEST(SourceQueue, PacketsStayFifoAndContiguous)
{
    SourceQueue q;
    q.enqueue(1, 5, 2);
    q.enqueue(2, 6, 2);
    EXPECT_EQ(q.packetCount(), 2u);
    EXPECT_EQ(q.nextFlit().packet, 1u);
    EXPECT_EQ(q.nextFlit().packet, 1u);
    EXPECT_EQ(q.nextFlit().packet, 2u);
    EXPECT_EQ(q.nextFlit().packet, 2u);
}

TEST(PacketTable, LifecycleAndAccounting)
{
    PacketTable table;
    const PacketInfo &a = table.create(1, 2, 10, 100, true);
    const PacketInfo &b = table.create(3, 4, 200, 101, false);
    EXPECT_NE(a.id, b.id);
    EXPECT_EQ(table.liveCount(), 2u);

    PacketInfo &mut = table.at(a.id);
    mut.hops = 7;
    EXPECT_EQ(table.at(a.id).hops, 7u);
    EXPECT_TRUE(table.at(a.id).measured);
    EXPECT_FALSE(table.at(b.id).measured);

    table.erase(a.id);
    EXPECT_EQ(table.liveCount(), 1u);
    EXPECT_DEATH(table.at(a.id), "unknown packet");
}

TEST(InputUnit, OutputAssignmentLifecycle)
{
    FlitStore store(1, 1);
    InputUnit iu(3, Direction::positive(0), 0, store, 0);
    EXPECT_EQ(iu.assignedOutput(), kNoUnit);
    EXPECT_EQ(iu.residentPacket(), 0u);
    iu.assignOutput(17, 42);
    EXPECT_EQ(iu.assignedOutput(), 17);
    EXPECT_EQ(iu.residentPacket(), 42u);
    iu.clearOutput();
    EXPECT_EQ(iu.assignedOutput(), kNoUnit);
    EXPECT_EQ(iu.residentPacket(), 0u);
    EXPECT_EQ(iu.node(), 3);
    EXPECT_EQ(iu.inDir(), Direction::positive(0));
}

TEST(OutputUnit, OwnershipLifecycle)
{
    OutputUnit ou(2, Direction::negative(1), 9, 0);
    EXPECT_TRUE(ou.free());
    ou.acquire(4);
    EXPECT_FALSE(ou.free());
    EXPECT_EQ(ou.owner(), 4);
    ou.release();
    EXPECT_TRUE(ou.free());
    EXPECT_FALSE(ou.isEjection());

    OutputUnit ej(2, Direction::local(), kInvalidChannel);
    EXPECT_TRUE(ej.isEjection());
}

TEST(Network, WiringMatchesTopology)
{
    const Mesh mesh(3, 3);
    Network net(mesh, 1);
    EXPECT_EQ(net.numInputs(),
              static_cast<std::size_t>(mesh.numChannels() +
                                       mesh.numNodes()));
    EXPECT_EQ(net.numOutputs(), net.numInputs());

    // Channel input units live at the channel's destination and
    // carry its direction.
    for (ChannelId c = 0; c < mesh.numChannels(); ++c) {
        const Channel &ch = mesh.channel(c);
        const InputUnit &iu = net.input(net.channelInput(c));
        EXPECT_EQ(iu.node(), ch.dst);
        EXPECT_EQ(iu.inDir(), ch.dir);
        const OutputUnit &ou = net.output(net.channelOutput(c));
        EXPECT_EQ(ou.node(), ch.src);
        EXPECT_EQ(ou.channel(), c);
    }

    // Injection/ejection units are local.
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        EXPECT_TRUE(
            net.input(net.injectionInput(n)).inDir().isLocal());
        EXPECT_TRUE(net.output(net.ejectionOutput(n)).isEjection());
        EXPECT_EQ(net.input(net.injectionInput(n)).node(), n);
    }
}

TEST(Network, RouterPortCountsMatchDegree)
{
    const Mesh mesh(3, 3);
    Network net(mesh, 1);
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        const Router &r = net.router(n);
        const std::size_t degree = mesh.channelsInto(n).size();
        EXPECT_EQ(r.inputs().size(), degree + 1);  // + injection
        EXPECT_EQ(r.outputs().size(), degree + 1); // + ejection
        // outputFor() maps directions to the same units addOutput
        // registered.
        mesh.directionsFrom(n).forEach([&](Direction d) {
            const UnitId out = r.outputFor(d);
            ASSERT_NE(out, kNoUnit);
            EXPECT_EQ(net.output(out).dir(), d);
        });
        EXPECT_EQ(r.ejectionOutput(), net.ejectionOutput(n));
    }
}

TEST(Network, FlitsInFlightCountsBufferedFlits)
{
    const Mesh mesh(3, 3);
    Network net(mesh, 2);
    EXPECT_EQ(net.flitsInFlight(), 0u);
    net.input(0).buffer().push(Flit{}, 0);
    net.input(3).buffer().push(Flit{}, 0);
    net.input(3).buffer().push(Flit{}, 1);
    EXPECT_EQ(net.flitsInFlight(), 3u);
    net.reset();
    EXPECT_EQ(net.flitsInFlight(), 0u);
}

} // namespace
} // namespace turnnet
