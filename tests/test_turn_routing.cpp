/**
 * @file
 * The generic turn-set-induced router must reproduce the hand-
 * written algorithms exactly: same routing relation from injection,
 * same shortest-path counts everywhere, same completability.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/turnmodel/prohibition.hpp"
#include "turnnet/turnmodel/turn_routing.hpp"

namespace turnnet {
namespace {

struct EquivCase
{
    std::string named;
    std::string turnset;
};

class TurnSetEquivalence
    : public ::testing::TestWithParam<EquivCase>
{
};

TEST_P(TurnSetEquivalence, SameRelationFromInjectionOn2DMesh)
{
    const Mesh mesh(5, 4);
    const RoutingPtr named = makeRouting({.name = GetParam().named, .dims = 2});
    const RoutingPtr induced = makeRouting({.name = GetParam().turnset, .dims = 2});
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(
                named->route(mesh, s, d, Direction::local()).mask(),
                induced->route(mesh, s, d, Direction::local())
                    .mask())
                << GetParam().named << " " << s << " -> " << d;
        }
    }
}

TEST_P(TurnSetEquivalence, SamePathCountsEverywhere)
{
    // Path counts integrate the relation over every reachable
    // mid-route state, so equality here means the relations agree
    // beyond the first hop too.
    const Mesh mesh(5, 4);
    const RoutingPtr named = makeRouting({.name = GetParam().named, .dims = 2});
    const RoutingPtr induced = makeRouting({.name = GetParam().turnset, .dims = 2});
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(countPaths(mesh, *named, s, d),
                      countPaths(mesh, *induced, s, d))
                << GetParam().named << " " << s << " -> " << d;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    NamedVsInduced, TurnSetEquivalence,
    ::testing::Values(
        EquivCase{"west-first", "turnset:west-first"},
        EquivCase{"north-last", "turnset:north-last"},
        EquivCase{"negative-first", "turnset:negative-first"},
        EquivCase{"xy", "turnset:xy"}),
    [](const auto &test_info) {
        std::string name = test_info.param.named;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

TEST(TurnSetEquivalenceND, AbonfAndAboplOn3DMesh)
{
    const Mesh mesh({3, 3, 3});
    for (const char *pair : {"abonf", "abopl", "negative-first"}) {
        const RoutingPtr named = makeRouting({.name = pair, .dims = 3});
        const RoutingPtr induced =
            makeRouting(
                {.name = std::string("turnset:") + pair, .dims = 3});
        for (NodeId s = 0; s < mesh.numNodes(); ++s) {
            for (NodeId d = 0; d < mesh.numNodes(); ++d) {
                if (s == d)
                    continue;
                EXPECT_EQ(
                    named->route(mesh, s, d, Direction::local())
                        .mask(),
                    induced->route(mesh, s, d, Direction::local())
                        .mask())
                    << pair << " " << s << " -> " << d;
            }
        }
    }
}

TEST(TurnSetEquivalenceCube, PcubeOnHypercube)
{
    const Hypercube cube(4);
    const RoutingPtr named = makeRouting({.name = "p-cube", .dims = 4});
    const TurnSetRouting induced("turnset:negative-first",
                                 negativeFirstTurns(4), true);
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(
                named->route(cube, s, d, Direction::local()).mask(),
                induced.route(cube, s, d, Direction::local())
                    .mask());
        }
    }
}

TEST(TurnSetRoutingBehavior, ReachabilityFilterPreventsStranding)
{
    // Without the filter, west-first's turn set would let a packet
    // for a northwest destination start north and then be unable to
    // ever turn west. The induced relation must not offer north.
    const Mesh mesh(6, 6);
    const TurnSetRouting wf("wf", westFirstTurns(), true);
    const NodeId src = mesh.nodeOf({4, 1});
    const NodeId dst = mesh.nodeOf({1, 4});
    const DirectionSet dirs =
        wf.route(mesh, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 1);
    EXPECT_TRUE(dirs.contains(Direction::negative(0)));
}

TEST(TurnSetRoutingBehavior, CanCompleteTracksTurnRules)
{
    const Mesh mesh(6, 6);
    const TurnSetRouting wf("wf", westFirstTurns(), true);
    const NodeId at = mesh.nodeOf({3, 3});
    const NodeId west_dest = mesh.nodeOf({0, 3});
    EXPECT_TRUE(wf.canComplete(mesh, at, west_dest,
                               Direction::negative(0)));
    EXPECT_TRUE(
        wf.canComplete(mesh, at, west_dest, Direction::local()));
    // Arriving eastbound, a westward destination is lost.
    EXPECT_FALSE(wf.canComplete(mesh, at, west_dest,
                                Direction::positive(0)));
}

TEST(TurnSetRoutingBehavior, ChecksDimensionality)
{
    const TurnSetRouting wf("wf", westFirstTurns(), true);
    EXPECT_DEATH(wf.checkTopology(Mesh({3, 3, 3})), "dimensions");
}

TEST(TurnSetRoutingBehavior, CacheSurvivesTopologyChanges)
{
    // The memoized reachability tables must be keyed by topology
    // structure: reusing one instance across different meshes (at
    // possibly identical stack addresses) must stay correct.
    const TurnSetRouting wf("wf", westFirstTurns(), true);
    for (int pass = 0; pass < 2; ++pass) {
        for (int size : {4, 6, 5}) {
            const Mesh mesh(size, size);
            const NodeId src = mesh.nodeOf({size - 1, 0});
            const NodeId dst = mesh.nodeOf({0, size - 1});
            const DirectionSet dirs =
                wf.route(mesh, src, dst, Direction::local());
            EXPECT_EQ(dirs.size(), 1) << mesh.name();
            EXPECT_TRUE(dirs.contains(Direction::negative(0)));
        }
    }
}

} // namespace
} // namespace turnnet
