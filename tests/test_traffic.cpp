/**
 * @file
 * Tests for the traffic patterns and the message generator
 * (Section 6's workload model).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/traffic/generator.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

TEST(UniformTraffic, NeverSelfAndCoversEveryone)
{
    const Mesh mesh(4, 4);
    const UniformTraffic uniform(mesh);
    Rng rng(7);
    std::set<NodeId> seen;
    for (int i = 0; i < 4000; ++i) {
        const NodeId d = uniform.dest(5, rng);
        EXPECT_NE(d, 5);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, mesh.numNodes());
        seen.insert(d);
    }
    EXPECT_EQ(seen.size(), 15u);
}

TEST(UniformTraffic, ApproximatelyUniform)
{
    const Mesh mesh(4, 4);
    const UniformTraffic uniform(mesh);
    Rng rng(11);
    std::map<NodeId, int> counts;
    const int draws = 60000;
    for (int i = 0; i < draws; ++i)
        ++counts[uniform.dest(0, rng)];
    for (const auto &[node, count] : counts)
        EXPECT_NEAR(count, draws / 15.0, draws / 15.0 * 0.15);
}

TEST(MeshTranspose, SwapsCoordinates)
{
    const Mesh mesh(16, 16);
    const MeshTransposeTraffic transpose(mesh);
    EXPECT_EQ(transpose.map(mesh.nodeOf({3, 7})),
              mesh.nodeOf({7, 3}));
    // Diagonal nodes map to themselves (and generate no traffic).
    EXPECT_EQ(transpose.map(mesh.nodeOf({5, 5})),
              mesh.nodeOf({5, 5}));
    EXPECT_TRUE(transpose.isPermutation());
}

TEST(MeshTranspose, IsAnInvolution)
{
    const Mesh mesh(8, 8);
    const MeshTransposeTraffic transpose(mesh);
    for (NodeId n = 0; n < mesh.numNodes(); ++n)
        EXPECT_EQ(transpose.map(transpose.map(n)), n);
}

TEST(CubeTranspose, MatchesThePapersMapping)
{
    // (x0..x7) -> (~x4, x5, x6, x7, ~x0, x1, x2, x3).
    const Hypercube cube(8);
    const CubeTransposeTraffic transpose(cube);
    for (NodeId src = 0; src < cube.numNodes(); src += 7) {
        const NodeId dst = transpose.map(src);
        EXPECT_EQ(Hypercube::bit(dst, 0),
                  Hypercube::bit(src, 4) ^ 1);
        EXPECT_EQ(Hypercube::bit(dst, 1), Hypercube::bit(src, 5));
        EXPECT_EQ(Hypercube::bit(dst, 2), Hypercube::bit(src, 6));
        EXPECT_EQ(Hypercube::bit(dst, 3), Hypercube::bit(src, 7));
        EXPECT_EQ(Hypercube::bit(dst, 4),
                  Hypercube::bit(src, 0) ^ 1);
        EXPECT_EQ(Hypercube::bit(dst, 5), Hypercube::bit(src, 1));
        EXPECT_EQ(Hypercube::bit(dst, 6), Hypercube::bit(src, 2));
        EXPECT_EQ(Hypercube::bit(dst, 7), Hypercube::bit(src, 3));
    }
}

TEST(CubeTranspose, IsAnInvolutionWithTheDiagonalFixed)
{
    // The embedding preserves the structure of the mesh transpose:
    // an involution whose fixed points are the image of the mesh
    // diagonal — 16 of the 256 nodes.
    const Hypercube cube(8);
    const CubeTransposeTraffic transpose(cube);
    int fixed = 0;
    for (NodeId n = 0; n < cube.numNodes(); ++n) {
        EXPECT_EQ(transpose.map(transpose.map(n)), n);
        fixed += transpose.map(n) == n;
    }
    EXPECT_EQ(fixed, 16);
}

TEST(ReverseFlip, MatchesThePapersMapping)
{
    // (x0..x7) -> (~x7, ~x6, ..., ~x0).
    const Hypercube cube(8);
    const ReverseFlipTraffic flip(cube);
    for (NodeId src = 0; src < cube.numNodes(); src += 5) {
        const NodeId dst = flip.map(src);
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(Hypercube::bit(dst, i),
                      Hypercube::bit(src, 7 - i) ^ 1);
        }
    }
    // Concrete example: 00000000 -> 11111111.
    EXPECT_EQ(flip.map(0), 255);
}

TEST(ReverseFlip, AverageDistanceMatchesThePaper)
{
    // The paper reports 4.27 average hops for reverse-flip in the
    // 8-cube (versus 4.01 for uniform).
    const Hypercube cube(8);
    const ReverseFlipTraffic flip(cube);
    double total = 0.0;
    int senders = 0;
    for (NodeId n = 0; n < cube.numNodes(); ++n) {
        if (flip.map(n) == n)
            continue;
        total += cube.distance(n, flip.map(n));
        ++senders;
    }
    EXPECT_NEAR(total / senders, 4.27, 0.02);
}

TEST(Permutations, AreBijections)
{
    const Hypercube cube(6);
    for (const char *name : {"reverse-flip", "bit-complement",
                             "bit-reverse", "shuffle",
                             "transpose-cube"}) {
        const TrafficPtr pattern = makeTraffic(name, cube);
        Rng rng(1);
        std::set<NodeId> image;
        for (NodeId n = 0; n < cube.numNodes(); ++n)
            image.insert(pattern->dest(n, rng));
        EXPECT_EQ(static_cast<NodeId>(image.size()),
                  cube.numNodes())
            << name;
    }
}

TEST(BitPatterns, ClassicDefinitions)
{
    const Hypercube cube(4);
    EXPECT_EQ(BitComplementTraffic(cube).map(0b0101), 0b1010);
    EXPECT_EQ(BitReverseTraffic(cube).map(0b0011), 0b1100);
    EXPECT_EQ(BitReverseTraffic(cube).map(0b0110), 0b0110);
    EXPECT_EQ(ShuffleTraffic(cube).map(0b1001), 0b0011);
}

TEST(Tornado, HalfwayAroundDimensionZero)
{
    const Mesh mesh(8, 8);
    const TornadoTraffic tornado(mesh);
    EXPECT_EQ(tornado.map(mesh.nodeOf({1, 3})), mesh.nodeOf({4, 3}));
    EXPECT_EQ(tornado.map(mesh.nodeOf({6, 0})), mesh.nodeOf({1, 0}));
}

TEST(Hotspot, BiasesTowardTheHotNode)
{
    const Mesh mesh(4, 4);
    const HotspotTraffic hotspot(mesh, 3, 0.25);
    Rng rng(5);
    int hot = 0;
    const int draws = 40000;
    for (int i = 0; i < draws; ++i)
        hot += hotspot.dest(9, rng) == 3;
    // 25% explicit plus 1/15 of the uniform remainder.
    const double expected = 0.25 + 0.75 / 15.0;
    EXPECT_NEAR(static_cast<double>(hot) / draws, expected, 0.01);
}

TEST(LengthMix, PaperDefaultAverages105)
{
    const MessageLengthMix mix = MessageLengthMix::paperDefault();
    mix.validate();
    EXPECT_DOUBLE_EQ(mix.mean(), 105.0);
    Rng rng(3);
    int tens = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        const int len = mix.sample(rng);
        EXPECT_TRUE(len == 10 || len == 200);
        tens += len == 10;
    }
    EXPECT_NEAR(static_cast<double>(tens) / draws, 0.5, 0.02);
}

TEST(Generator, ProducesTheRequestedFlitRate)
{
    const Mesh mesh(4, 4);
    const TrafficPtr uniform = makeTraffic("uniform", mesh);
    const double load = 0.2; // flits per node per cycle
    MessageGenerator gen(mesh, uniform, load,
                         MessageLengthMix::paperDefault(), 123);
    std::uint64_t flits = 0;
    const Cycle horizon = 60000;
    for (Cycle t = 0; t < horizon; ++t) {
        gen.generate(t, [&](NodeId, NodeId, int len) {
            flits += static_cast<std::uint64_t>(len);
        });
    }
    const double rate = static_cast<double>(flits) /
                        (static_cast<double>(horizon) *
                         mesh.numNodes());
    EXPECT_NEAR(rate, load, load * 0.05);
}

TEST(Generator, ZeroLoadIsSilent)
{
    const Mesh mesh(4, 4);
    MessageGenerator gen(mesh, nullptr, 0.0,
                         MessageLengthMix::paperDefault(), 1);
    int calls = 0;
    for (Cycle t = 0; t < 1000; ++t)
        gen.generate(t, [&](NodeId, NodeId, int) { ++calls; });
    EXPECT_EQ(calls, 0);
}

TEST(Generator, SkipsSelfDestinedPermutationSlots)
{
    const Mesh mesh(4, 4);
    const TrafficPtr transpose = makeTraffic("transpose", mesh);
    MessageGenerator gen(mesh, transpose, 0.5,
                         MessageLengthMix::fixed(10), 7);
    for (Cycle t = 0; t < 20000; ++t) {
        gen.generate(t, [&](NodeId src, NodeId dst, int) {
            EXPECT_NE(src, dst);
            // Diagonal nodes never emit.
            const Coord c = mesh.coordOf(src);
            EXPECT_NE(c[0], c[1]);
        });
    }
}

TEST(TrafficFactory, RejectsMismatchedTopology)
{
    const Mesh mesh(4, 3);
    EXPECT_DEATH(makeTraffic("transpose", mesh), "square");
    EXPECT_DEATH(makeTraffic("reverse-flip", mesh), "hypercube");
    EXPECT_DEATH(makeTraffic("no-such-pattern", mesh), "unknown");
}

} // namespace
} // namespace turnnet
