/**
 * @file
 * Tests for the odd-even turn model extension: parity rules,
 * deadlock freedom by exact (node-dependent) dependency analysis,
 * no stranding, and the evenness-of-adaptivity property that
 * motivates it over west-first.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/analysis/cdg.hpp"
#include "turnnet/analysis/path_enum.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/odd_even.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

const Direction kWest = Direction::negative(0);
const Direction kEast = Direction::positive(0);
const Direction kSouth = Direction::negative(1);
const Direction kNorth = Direction::positive(1);

TEST(OddEvenRules, ParityOfTheColumnDecides)
{
    const Mesh mesh(6, 6);
    const NodeId even_col = mesh.nodeOf({2, 3});
    const NodeId odd_col = mesh.nodeOf({3, 3});

    // Even columns: no turns out of east.
    EXPECT_FALSE(
        OddEven::turnAllowed(mesh, even_col, kEast, kNorth));
    EXPECT_FALSE(
        OddEven::turnAllowed(mesh, even_col, kEast, kSouth));
    EXPECT_TRUE(OddEven::turnAllowed(mesh, odd_col, kEast, kNorth));
    EXPECT_TRUE(OddEven::turnAllowed(mesh, odd_col, kEast, kSouth));

    // Odd columns: no turns into west.
    EXPECT_FALSE(
        OddEven::turnAllowed(mesh, odd_col, kNorth, kWest));
    EXPECT_FALSE(
        OddEven::turnAllowed(mesh, odd_col, kSouth, kWest));
    EXPECT_TRUE(
        OddEven::turnAllowed(mesh, even_col, kNorth, kWest));
    EXPECT_TRUE(
        OddEven::turnAllowed(mesh, even_col, kSouth, kWest));

    // Straight always; reversal never; injection anything.
    EXPECT_TRUE(OddEven::turnAllowed(mesh, even_col, kEast, kEast));
    EXPECT_FALSE(
        OddEven::turnAllowed(mesh, even_col, kNorth, kSouth));
    EXPECT_TRUE(OddEven::turnAllowed(mesh, even_col,
                                     Direction::local(), kWest));
    // The remaining turns (out of west, out of north/south into
    // east) are allowed everywhere.
    EXPECT_TRUE(OddEven::turnAllowed(mesh, even_col, kWest, kNorth));
    EXPECT_TRUE(OddEven::turnAllowed(mesh, odd_col, kWest, kSouth));
    EXPECT_TRUE(OddEven::turnAllowed(mesh, odd_col, kNorth, kEast));
}

TEST(OddEvenCdg, AcyclicOnMeshesOfBothParities)
{
    const OddEven oe;
    for (const auto &[w, h] :
         {std::pair{4, 4}, {5, 5}, {6, 3}, {7, 4}, {2, 6}}) {
        const Mesh mesh(w, h);
        const CdgReport report = analyzeDependencies(mesh, oe);
        EXPECT_TRUE(report.acyclic)
            << mesh.name() << ": " << report.cycleToString(mesh);
    }
    EXPECT_TRUE(isDeadlockFree(Mesh(5, 5), OddEven(false)));
}

TEST(OddEvenRouting, AllPairsRoutableAndMinimal)
{
    const Mesh mesh(6, 5);
    const OddEven oe;
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto path = tracePath(mesh, oe, s, d);
            EXPECT_EQ(static_cast<int>(path.size()) - 1,
                      mesh.distance(s, d))
                << s << " -> " << d;
        }
    }
}

TEST(OddEvenRouting, NoStrandingMidRoute)
{
    // Every state the relation reaches must offer another hop: the
    // reachability guard prevents e.g. turning north in a column
    // from which the destination would need a forbidden west turn.
    const Mesh mesh(6, 6);
    const OddEven oe;
    for (NodeId s = 0; s < mesh.numNodes(); s += 3) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            std::vector<std::pair<NodeId, Direction>> stack{
                {s, Direction::local()}};
            while (!stack.empty()) {
                const auto [v, in] = stack.back();
                stack.pop_back();
                if (v == d)
                    continue;
                const DirectionSet outs = oe.route(mesh, v, d, in);
                ASSERT_FALSE(outs.empty())
                    << "stranded at " << v << " for " << d;
                outs.forEach([&](Direction o) {
                    stack.push_back({mesh.neighbor(v, o), o});
                });
            }
        }
    }
}

TEST(OddEvenRouting, EastboundAdaptivityDependsOnSourceParity)
{
    // The signature odd-even behavior: an eastbound packet may only
    // leave the east direction in odd columns, so which shortest
    // paths exist depends on column parities — unlike west-first,
    // where every eastbound pair is fully adaptive.
    const Mesh mesh(8, 8);
    const OddEven oe;
    // Even-column node travelling east cannot turn off.
    const DirectionSet even_mid = oe.route(
        mesh, mesh.nodeOf({2, 2}), mesh.nodeOf({5, 5}), kEast);
    EXPECT_TRUE(even_mid.contains(kEast));
    EXPECT_FALSE(even_mid.contains(kNorth));
    // Odd-column node travelling east can.
    const DirectionSet odd_mid = oe.route(
        mesh, mesh.nodeOf({3, 2}), mesh.nodeOf({5, 5}), kEast);
    EXPECT_TRUE(odd_mid.contains(kNorth));
}

TEST(OddEvenAdaptiveness, MoreEvenlySpreadThanWestFirst)
{
    // Chiu's motivation: west-first gives half the pairs full
    // adaptivity and the other half a single path; odd-even gives
    // most pairs a moderate number of paths. Concretely: a much
    // smaller fraction of pairs is stuck with exactly one path.
    const Mesh mesh(8, 8);
    const auto oe =
        summarizeAdaptiveness(mesh, *makeRouting({.name = "odd-even"}));
    const auto wf =
        summarizeAdaptiveness(mesh, *makeRouting({.name = "west-first"}));
    EXPECT_LT(oe.singlePathFraction,
              wf.singlePathFraction * 0.55);
    // Both are partially adaptive: strictly between xy and fully
    // adaptive in mean path count.
    EXPECT_GT(oe.meanPaths, 1.0);
    EXPECT_LT(oe.meanPaths, wf.meanFullyAdaptive);
}

TEST(OddEvenSim, DeliversUnderStressWithoutWedging)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.5;
    config.lengths = MessageLengthMix::fixed(200);
    config.watchdogCycles = 8000;
    config.warmupCycles = 100;
    config.measureCycles = 15000;
    config.drainCycles = 100;
    config.seed = 3;
    Simulator sim(mesh, makeRouting({.name = "odd-even"}),
                  makeTraffic("uniform", mesh), config);
    const SimResult result = sim.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.packetsFinished, 50u);
}

TEST(OddEvenChecks, RejectsWrongTopologies)
{
    EXPECT_DEATH(OddEven().checkTopology(Hypercube(3)),
                 "2D meshes");
    EXPECT_DEATH(OddEven().checkTopology(Torus(4, 2)), "2D meshes");
}

} // namespace
} // namespace turnnet
