/**
 * @file
 * Properties every routing algorithm must satisfy, swept across the
 * (algorithm x topology) matrix with parameterized tests:
 * connectivity (every pair is routable), minimality (every offered
 * hop shortens the distance), turn legality, livelock freedom of
 * traced paths, and honesty of canComplete().
 */

#include <gtest/gtest.h>

#include <memory>

#include "turnnet/analysis/path_enum.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"

namespace turnnet {
namespace {

struct Case
{
    std::string algorithm;
    std::string topology; // "mesh44", "mesh53", "mesh333", "cube4",
                          // "torus42"
};

std::unique_ptr<Topology>
build(const std::string &id)
{
    if (id == "mesh44")
        return std::make_unique<Mesh>(4, 4);
    if (id == "mesh53")
        return std::make_unique<Mesh>(5, 3);
    if (id == "mesh333")
        return std::make_unique<Mesh>(std::vector<int>{3, 3, 3});
    if (id == "cube4")
        return std::make_unique<Hypercube>(4);
    if (id == "torus42")
        return std::make_unique<Torus>(4, 2);
    ADD_FAILURE() << "unknown topology id " << id;
    return nullptr;
}

class RoutingProperties : public ::testing::TestWithParam<Case>
{
  protected:
    void
    SetUp() override
    {
        topo_ = build(GetParam().topology);
        routing_ = makeRouting({.name = GetParam().algorithm, .dims = topo_->numDims()});
        routing_->checkTopology(*topo_);
    }

    std::unique_ptr<Topology> topo_;
    RoutingPtr routing_;
};

TEST_P(RoutingProperties, EveryPairIsRoutableFromInjection)
{
    for (NodeId s = 0; s < topo_->numNodes(); ++s) {
        for (NodeId d = 0; d < topo_->numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_FALSE(routing_
                             ->route(*topo_, s, d,
                                     Direction::local())
                             .empty())
                << "no route " << s << " -> " << d;
        }
    }
}

TEST_P(RoutingProperties, OfferedDirectionsHaveChannels)
{
    for (NodeId s = 0; s < topo_->numNodes(); ++s) {
        for (NodeId d = 0; d < topo_->numNodes(); ++d) {
            if (s == d)
                continue;
            routing_->route(*topo_, s, d, Direction::local())
                .forEach([&](Direction o) {
                    EXPECT_NE(topo_->neighbor(s, o), kInvalidNode);
                    EXPECT_NE(topo_->channelFrom(s, o),
                              kInvalidChannel);
                });
        }
    }
}

TEST_P(RoutingProperties, MinimalAlgorithmsAlwaysShortenDistance)
{
    if (!routing_->isMinimal())
        GTEST_SKIP() << "nonminimal algorithm";
    for (NodeId s = 0; s < topo_->numNodes(); ++s) {
        for (NodeId d = 0; d < topo_->numNodes(); ++d) {
            if (s == d)
                continue;
            routing_->route(*topo_, s, d, Direction::local())
                .forEach([&](Direction o) {
                    const NodeId next = topo_->neighbor(s, o);
                    EXPECT_EQ(topo_->distance(next, d),
                              topo_->distance(s, d) - 1);
                });
        }
    }
}

TEST_P(RoutingProperties, TracedPathsTerminateEverywhere)
{
    // Follow the relation with the lowest-dimension selector from
    // every source to every destination; tracePath() enforces the
    // livelock bound internally.
    for (NodeId s = 0; s < topo_->numNodes(); ++s) {
        for (NodeId d = 0; d < topo_->numNodes(); ++d) {
            if (s == d)
                continue;
            const auto path = tracePath(*topo_, *routing_, s, d);
            EXPECT_EQ(path.front(), s);
            EXPECT_EQ(path.back(), d);
            if (routing_->isMinimal()) {
                EXPECT_EQ(static_cast<int>(path.size()) - 1,
                          topo_->distance(s, d));
            }
        }
    }
}

TEST_P(RoutingProperties, MidRouteStatesRemainRoutable)
{
    // For every state the relation can actually reach, either the
    // packet has arrived or another hop is offered (no stranding).
    for (NodeId s = 0; s < topo_->numNodes(); ++s) {
        for (NodeId d = 0; d < topo_->numNodes(); ++d) {
            if (s == d)
                continue;
            // Walk all reachable (node, in_dir) states by DFS.
            std::vector<bool> seen(
                static_cast<std::size_t>(topo_->numNodes()) *
                    (2 * topo_->numDims() + 1),
                false);
            auto idx = [&](NodeId v, Direction in) {
                const int dirs = 2 * topo_->numDims() + 1;
                const int i =
                    in.isLocal() ? dirs - 1 : in.index();
                return static_cast<std::size_t>(v) * dirs + i;
            };
            std::vector<std::pair<NodeId, Direction>> stack{
                {s, Direction::local()}};
            seen[idx(s, Direction::local())] = true;
            while (!stack.empty()) {
                const auto [v, in] = stack.back();
                stack.pop_back();
                if (v == d)
                    continue;
                const DirectionSet outs =
                    routing_->route(*topo_, v, d, in);
                EXPECT_FALSE(outs.empty())
                    << "stranded at " << v << " in "
                    << in.toString() << " heading for " << d;
                outs.forEach([&](Direction o) {
                    const NodeId w = topo_->neighbor(v, o);
                    ASSERT_NE(w, kInvalidNode);
                    if (!seen[idx(w, o)]) {
                        seen[idx(w, o)] = true;
                        stack.push_back({w, o});
                    }
                });
            }
        }
    }
}

TEST_P(RoutingProperties, CanCompleteHoldsOnReachableStates)
{
    for (NodeId s = 0; s < topo_->numNodes(); ++s) {
        for (NodeId d = 0; d < topo_->numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_TRUE(routing_->canComplete(*topo_, s, d,
                                              Direction::local()));
            routing_->route(*topo_, s, d, Direction::local())
                .forEach([&](Direction o) {
                    EXPECT_TRUE(routing_->canComplete(
                        *topo_, topo_->neighbor(s, o), d, o));
                });
        }
    }
}

std::string
caseName(const ::testing::TestParamInfo<Case> &info)
{
    std::string name =
        info.param.algorithm + "_" + info.param.topology;
    for (char &ch : name)
        if (ch == '-' || ch == ':')
            ch = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    Mesh2D, RoutingProperties,
    ::testing::Values(Case{"xy", "mesh44"}, Case{"xy", "mesh53"},
                      Case{"west-first", "mesh44"},
                      Case{"west-first", "mesh53"},
                      Case{"north-last", "mesh44"},
                      Case{"north-last", "mesh53"},
                      Case{"negative-first", "mesh44"},
                      Case{"negative-first", "mesh53"},
                      Case{"fully-adaptive", "mesh44"}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    MeshND, RoutingProperties,
    ::testing::Values(Case{"dimension-order", "mesh333"},
                      Case{"negative-first", "mesh333"},
                      Case{"abonf", "mesh333"},
                      Case{"abopl", "mesh333"}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    Cube, RoutingProperties,
    ::testing::Values(Case{"ecube", "cube4"},
                      Case{"p-cube", "cube4"},
                      Case{"abonf", "cube4"},
                      Case{"abopl", "cube4"}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    Nonminimal, RoutingProperties,
    ::testing::Values(Case{"west-first-nm", "mesh44"},
                      Case{"west-first-nm", "mesh53"},
                      Case{"north-last-nm", "mesh44"},
                      Case{"negative-first-nm", "mesh44"},
                      Case{"negative-first-nm", "mesh53"},
                      Case{"abonf-nm", "mesh333"},
                      Case{"abopl-nm", "mesh333"},
                      Case{"p-cube-nm", "cube4"}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    TurnSetInduced, RoutingProperties,
    ::testing::Values(Case{"turnset:west-first", "mesh44"},
                      Case{"turnset:north-last", "mesh44"},
                      Case{"turnset:negative-first", "mesh44"},
                      Case{"turnset:abonf", "mesh333"},
                      Case{"turnset:abopl", "mesh333"}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    Torus, RoutingProperties,
    ::testing::Values(Case{"nf-torus", "torus42"},
                      Case{"xy-first-hop-wrap", "torus42"},
                      Case{"nf-first-hop-wrap", "torus42"}),
    caseName);

} // namespace
} // namespace turnnet
