/**
 * @file
 * Indefinite postponement (Section 1/6): the paper chooses local
 * first-come-first-served input selection because it is fair and
 * therefore prevents starvation. These tests show FCFS serving
 * competing flows evenly while fixed-priority arbitration starves
 * the lower-priority flow.
 */

#include <gtest/gtest.h>

#include <map>

#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

/**
 * Two flows fight for the eastward channel out of router (1,1):
 * flow A from (0,1) passes through travelling east, flow B is
 * injected locally at (1,1). Both end at (3,1). Returns delivered
 * packets per flow source.
 */
std::map<NodeId, int>
runContention(InputPolicy policy)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.0;
    config.inputPolicy = policy;
    config.watchdogCycles = 50000;

    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);
    std::map<NodeId, int> delivered;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        ++delivered[info.src];
    };

    const NodeId a = mesh.nodeOf({0, 1});
    const NodeId b = mesh.nodeOf({1, 1});
    const NodeId sink = mesh.nodeOf({3, 1});
    // Keep both source queues saturated: 40 packets of 25 flits
    // each, all competing for the east channel out of (1,1).
    for (int i = 0; i < 40; ++i) {
        sim.injectMessage(a, sink, 25);
        sim.injectMessage(b, sink, 25);
    }
    EXPECT_TRUE(sim.runUntilIdle(200000));
    return delivered;
}

TEST(Fairness, FcfsServesBothFlows)
{
    const Mesh mesh(4, 4);
    const auto delivered = runContention(InputPolicy::Fcfs);
    EXPECT_EQ(delivered.at(mesh.nodeOf({0, 1})), 40);
    EXPECT_EQ(delivered.at(mesh.nodeOf({1, 1})), 40);
}

TEST(Fairness, FcfsInterleavesRoughlyEvenly)
{
    // Track the order of deliveries: with FCFS neither flow should
    // finish all its packets before the other has moved most of
    // its own.
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.0;
    config.inputPolicy = InputPolicy::Fcfs;
    config.watchdogCycles = 50000;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);

    const NodeId a = mesh.nodeOf({0, 1});
    const NodeId b = mesh.nodeOf({1, 1});
    const NodeId sink = mesh.nodeOf({3, 1});
    std::vector<NodeId> order;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        order.push_back(info.src);
    };
    for (int i = 0; i < 30; ++i) {
        sim.injectMessage(a, sink, 25);
        sim.injectMessage(b, sink, 25);
    }
    ASSERT_TRUE(sim.runUntilIdle(200000));
    // In the first half of deliveries, both flows appear.
    int a_early = 0;
    for (std::size_t i = 0; i < order.size() / 2; ++i)
        a_early += order[i] == a;
    EXPECT_GT(a_early, 5);
    EXPECT_LT(a_early, static_cast<int>(order.size() / 2) - 5);
}

TEST(Fairness, FixedPriorityDelaysTheLowPriorityFlow)
{
    // With fixed-priority arbitration the favored input wins every
    // contested allocation; the other flow's packets all finish
    // late. (True starvation needs an unbounded favored flow; with
    // finite traffic we observe segregation instead.)
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.0;
    config.inputPolicy = InputPolicy::FixedPriority;
    config.watchdogCycles = 50000;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);

    const NodeId a = mesh.nodeOf({0, 1});
    const NodeId b = mesh.nodeOf({1, 1});
    const NodeId sink = mesh.nodeOf({3, 1});
    std::vector<NodeId> order;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        order.push_back(info.src);
    };
    for (int i = 0; i < 30; ++i) {
        sim.injectMessage(a, sink, 25);
        sim.injectMessage(b, sink, 25);
    }
    ASSERT_TRUE(sim.runUntilIdle(200000));

    // One flow dominates the first half of deliveries almost
    // completely.
    std::map<NodeId, int> early;
    for (std::size_t i = 0; i < order.size() / 2; ++i)
        ++early[order[i]];
    const int max_early = std::max(early[a], early[b]);
    EXPECT_GE(max_early, static_cast<int>(order.size() / 2) - 3);
}

} // namespace
} // namespace turnnet
