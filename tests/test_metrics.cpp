/**
 * @file
 * Tests for the results layer: the summary line, channel
 * utilization accounting, and the latency bookkeeping conventions.
 */

#include <gtest/gtest.h>

#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

TEST(SimResultSummary, MentionsTheKeyFacts)
{
    SimResult r;
    r.topology = "mesh(4x4)";
    r.algorithm = "west-first";
    r.traffic = "uniform";
    r.offeredLoad = 0.08;
    r.acceptedFlitsPerUsec = 94.9;
    r.avgTotalLatencyUs = 7.61;
    r.avgHops = 5.45;
    r.sustainable = true;
    const std::string s = r.summary();
    EXPECT_NE(s.find("west-first"), std::string::npos);
    EXPECT_NE(s.find("uniform"), std::string::npos);
    EXPECT_NE(s.find("94.9"), std::string::npos);
    EXPECT_NE(s.find("sustainable"), std::string::npos);

    r.sustainable = false;
    EXPECT_NE(r.summary().find("SATURATED"), std::string::npos);
    r.deadlocked = true;
    EXPECT_NE(r.summary().find("DEADLOCK"), std::string::npos);
}

TEST(ChannelUtilization, SingleStreamSaturatesItsPath)
{
    // One long worm across one channel: that channel's utilization
    // over the measurement window reflects exactly its flits.
    const Mesh mesh(3, 3);
    SimConfig config;
    config.load = 0.0;
    config.warmupCycles = 0;
    config.measureCycles = 100;
    config.drainCycles = 200;
    config.watchdogCycles = 50000;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({1, 0}), 50);
    const SimResult r = sim.run();
    ASSERT_EQ(r.packetsFinished, 1u);

    const auto &flits = sim.channelFlits();
    const ChannelId used = mesh.channelFrom(
        mesh.nodeOf({0, 0}), Direction::positive(0));
    // All 50 flits crossed within the 100-cycle window.
    EXPECT_EQ(flits.at(used), 50u);
    std::uint64_t total = 0;
    for (const auto f : flits)
        total += f;
    EXPECT_EQ(total, 50u);
    EXPECT_DOUBLE_EQ(r.maxChannelUtilization, 0.5);
    EXPECT_GT(r.meanChannelUtilization, 0.0);
    EXPECT_LT(r.meanChannelUtilization, r.maxChannelUtilization);
}

TEST(ChannelUtilization, CountsOnlyTheMeasureWindow)
{
    // Traffic confined to warmup leaves the counters empty.
    const Mesh mesh(3, 3);
    SimConfig config;
    config.load = 0.0;
    config.warmupCycles = 500;
    config.measureCycles = 100;
    config.drainCycles = 100;
    config.watchdogCycles = 50000;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({2, 2}), 10);
    const SimResult r = sim.run();
    EXPECT_DOUBLE_EQ(r.maxChannelUtilization, 0.0);
}

TEST(Latency, TotalIncludesQueueingNetworkDoesNot)
{
    // Two back-to-back packets on one path: the second queues at
    // the source, so its total latency exceeds its network latency
    // by the queueing delay.
    const Mesh mesh(3, 3);
    SimConfig config;
    config.load = 0.0;
    config.warmupCycles = 0;
    config.measureCycles = 400;
    config.drainCycles = 400;
    config.watchdogCycles = 50000;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);
    std::vector<PacketInfo> delivered;
    std::vector<Cycle> when;
    sim.onDelivered = [&](const PacketInfo &info, Cycle at) {
        delivered.push_back(info);
        when.push_back(at);
    };
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({2, 0}), 30);
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({2, 0}), 30);
    const SimResult r = sim.run();
    ASSERT_EQ(delivered.size(), 2u);
    // First packet: created and injected at once.
    EXPECT_EQ(delivered[0].injected, 0u);
    // Second packet's header waited for the first worm to inject.
    EXPECT_GE(delivered[1].injected, 29u);
    // Aggregates reflect the same convention.
    EXPECT_GT(r.avgTotalLatencyUs, r.avgNetworkLatencyUs);
}

TEST(Latency, PercentilesBracketTheMean)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.1;
    config.warmupCycles = 300;
    config.measureCycles = 3000;
    config.drainCycles = 4000;
    config.seed = 8;
    Simulator sim(mesh, makeRouting({.name = "west-first"}),
                  makeTraffic("uniform", mesh), config);
    const SimResult r = sim.run();
    ASSERT_GT(r.packetsFinished, 50u);
    EXPECT_LE(r.p50TotalLatencyUs, r.p99TotalLatencyUs);
    EXPECT_GT(r.p99TotalLatencyUs, r.avgTotalLatencyUs);
}

} // namespace
} // namespace turnnet
