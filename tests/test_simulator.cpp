/**
 * @file
 * Scripted simulator tests: exact single-packet latencies, flit
 * conservation, FCFS arbitration, determinism, and the measurement
 * pipeline.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

SimConfig
scriptedConfig()
{
    SimConfig config;
    config.load = 0.0;
    config.watchdogCycles = 1000;
    return config;
}

TEST(Simulator, SinglePacketCrossesTheMesh)
{
    const Mesh mesh(4, 4);
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  scriptedConfig());

    std::vector<PacketInfo> delivered;
    std::vector<Cycle> times;
    sim.onDelivered = [&](const PacketInfo &info, Cycle at) {
        delivered.push_back(info);
        times.push_back(at);
    };

    const NodeId src = mesh.nodeOf({0, 0});
    const NodeId dst = mesh.nodeOf({3, 0});
    sim.injectMessage(src, dst, 4);
    ASSERT_TRUE(sim.runUntilIdle(1000));

    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0].src, src);
    EXPECT_EQ(delivered[0].dest, dst);
    EXPECT_EQ(delivered[0].hops, 3u);
    EXPECT_EQ(sim.flitsCreated(), 4u);
    EXPECT_EQ(sim.flitsDelivered(), 4u);
    EXPECT_EQ(sim.packetsDelivered(), 1u);

    // Uncontended wormhole latency: flit f is injected at cycle f,
    // crosses D channels, and is consumed at f + D + 1. The tail
    // (f = L-1) completes at L + D cycles.
    EXPECT_EQ(times[0], 4u + 3u);
}

TEST(Simulator, LatencyIsSumOfDistanceAndLength)
{
    // The wormhole pipeline property (Section 1): latency grows
    // with D + L, not D * L.
    const Mesh mesh(8, 8);
    for (const int length : {1, 10, 50}) {
        for (const int dist : {1, 7, 14}) {
            Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                          scriptedConfig());
            Cycle done = 0;
            sim.onDelivered = [&](const PacketInfo &,
                                  Cycle at) { done = at; };
            const NodeId src = mesh.nodeOf({0, 0});
            const NodeId dst = mesh.nodeOf(
                {std::min(dist, 7), std::max(0, dist - 7)});
            ASSERT_EQ(mesh.distance(src, dst), dist);
            sim.injectMessage(src, dst,
                              static_cast<std::uint32_t>(length));
            ASSERT_TRUE(sim.runUntilIdle(2000));
            EXPECT_EQ(done, static_cast<Cycle>(length + dist));
        }
    }
}

TEST(Simulator, BackToBackPacketsPipelineThroughOneChannel)
{
    const Mesh mesh(4, 4);
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  scriptedConfig());
    std::vector<Cycle> times;
    sim.onDelivered = [&](const PacketInfo &, Cycle at) {
        times.push_back(at);
    };
    const NodeId src = mesh.nodeOf({0, 0});
    const NodeId dst = mesh.nodeOf({2, 0});
    sim.injectMessage(src, dst, 10);
    sim.injectMessage(src, dst, 10);
    ASSERT_TRUE(sim.runUntilIdle(1000));
    ASSERT_EQ(times.size(), 2u);
    // First tail at L + D = 12; the second packet streams right
    // behind: its flits inject at cycles 10..19, tail consumed at
    // 19 + D + 1 = 22.
    EXPECT_EQ(times[0], 12u);
    EXPECT_EQ(times[1], 22u);
}

TEST(Simulator, FcfsArbitrationFavorsEarlierHeader)
{
    // Two packets meet at router (1,0), both wanting its eastward
    // output. B's header (injected locally at cycle 0) reaches the
    // router before A's header (one hop away): B must win, and A
    // must wait for B's tail.
    const Mesh mesh(4, 4);
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  scriptedConfig());
    std::vector<PacketId> order;
    std::vector<Cycle> times;
    sim.onDelivered = [&](const PacketInfo &info, Cycle at) {
        order.push_back(info.id);
        times.push_back(at);
    };
    const PacketId a = sim.injectMessage(mesh.nodeOf({0, 0}),
                                         mesh.nodeOf({3, 0}), 20);
    const PacketId b = sim.injectMessage(mesh.nodeOf({1, 0}),
                                         mesh.nodeOf({3, 0}), 20);
    ASSERT_TRUE(sim.runUntilIdle(2000));
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], b);
    EXPECT_EQ(order[1], a);
    // B runs uncontended: tail at 20 + 2. A's header waits at (1,0)
    // until B's tail frees the channel.
    EXPECT_EQ(times[0], 22u);
    EXPECT_GT(times[1], 40u);
}

TEST(Simulator, ConservationAcrossARandomRun)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.08;
    config.warmupCycles = 200;
    config.measureCycles = 1500;
    config.drainCycles = 3000;
    config.seed = 5;
    Simulator sim(mesh, makeRouting({.name = "west-first"}),
                  makeTraffic("uniform", mesh), config);
    const SimResult result = sim.run();
    EXPECT_FALSE(result.deadlocked);
    // Internal conservation asserts ran throughout; at the end all
    // measured packets should have finished.
    EXPECT_EQ(result.packetsUnfinished, 0u);
    EXPECT_GT(result.packetsFinished, 5u);
    EXPECT_GT(result.acceptedFlitsPerUsec, 0.0);
    EXPECT_GT(result.avgHops, 1.0);
    EXPECT_GT(result.avgTotalLatencyUs,
              result.avgNetworkLatencyUs * 0.999);
}

TEST(Simulator, SameSeedSameResult)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.1;
    config.warmupCycles = 100;
    config.measureCycles = 800;
    config.drainCycles = 2000;
    config.seed = 11;

    auto run = [&]() {
        Simulator sim(mesh, makeRouting({.name = "negative-first"}),
                      makeTraffic("uniform", mesh), config);
        return sim.run();
    };
    const SimResult a = run();
    const SimResult b = run();
    EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
    EXPECT_EQ(a.packetsFinished, b.packetsFinished);
    EXPECT_DOUBLE_EQ(a.avgTotalLatencyUs, b.avgTotalLatencyUs);
    EXPECT_DOUBLE_EQ(a.acceptedFlitsPerUsec,
                     b.acceptedFlitsPerUsec);
    EXPECT_DOUBLE_EQ(a.avgHops, b.avgHops);
}

TEST(Simulator, DifferentSeedsDiffer)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.1;
    config.warmupCycles = 100;
    config.measureCycles = 800;
    config.drainCycles = 2000;

    auto run = [&](std::uint64_t seed) {
        config.seed = seed;
        Simulator sim(mesh, makeRouting({.name = "negative-first"}),
                      makeTraffic("uniform", mesh), config);
        return sim.run();
    };
    EXPECT_NE(run(1).avgTotalLatencyUs, run(2).avgTotalLatencyUs);
}

TEST(Simulator, HopCountsEqualDistancesUnderMinimalRouting)
{
    const Mesh mesh(5, 5);
    Simulator sim(mesh, makeRouting({.name = "negative-first"}), nullptr,
                  scriptedConfig());
    std::vector<PacketInfo> delivered;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        delivered.push_back(info);
    };
    for (NodeId s = 0; s < mesh.numNodes(); s += 3) {
        for (NodeId d = 0; d < mesh.numNodes(); d += 7) {
            if (s != d)
                sim.injectMessage(s, d, 3);
        }
    }
    ASSERT_TRUE(sim.runUntilIdle(20000));
    for (const PacketInfo &info : delivered) {
        EXPECT_EQ(static_cast<int>(info.hops),
                  mesh.distance(info.src, info.dest));
    }
}

TEST(Simulator, MeasurementWindowsExcludeWarmupTraffic)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.05;
    config.warmupCycles = 500;
    config.measureCycles = 1000;
    config.drainCycles = 2000;
    config.seed = 3;
    Simulator sim(mesh, makeRouting({.name = "xy"}),
                  makeTraffic("uniform", mesh), config);
    const SimResult result = sim.run();
    // Roughly load * nodes * measure / meanlen packets measured.
    const double expected =
        0.05 * 16 * 1000 / MessageLengthMix::paperDefault().mean();
    EXPECT_NEAR(static_cast<double>(result.packetsMeasured),
                expected, expected * 0.6);
    EXPECT_GT(result.generatedLoad, 0.02);
}

TEST(Simulator, ScriptedInjectionCountsTowardGeneratedLoad)
{
    // Regression: injectMessage() skipped the
    // measuredFlitsGenerated_ accounting, so scripted workloads
    // reported generatedLoad == 0 no matter how many flits they
    // pushed through the measurement window.
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.0;
    config.warmupCycles = 0;
    config.measureCycles = 1000;
    config.drainCycles = 2000;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);

    const NodeId a = mesh.nodeOf({0, 0});
    const NodeId b = mesh.nodeOf({3, 2});
    const NodeId c = mesh.nodeOf({1, 3});
    sim.injectMessage(a, b, 10);
    sim.injectMessage(b, c, 20);
    sim.injectMessage(c, a, 2);

    const SimResult result = sim.run();
    ASSERT_EQ(result.packetsMeasured, 3u);
    EXPECT_EQ(result.packetsUnfinished, 0u);
    // 32 flits over 16 nodes x 1000 measured cycles.
    EXPECT_DOUBLE_EQ(result.generatedLoad,
                     32.0 / (16.0 * 1000.0));
}

TEST(Simulator, GoldenDeterminismOnEveryResultField)
{
    // Two runs of the same configuration and seed must agree
    // bit-for-bit on every field of SimResult, including the
    // sample-level accumulators added for replicate merging. This
    // is the contract the parallel sweep engine builds on.
    const Mesh mesh(5, 5);
    SimConfig config;
    config.load = 0.09;
    config.warmupCycles = 300;
    config.measureCycles = 1500;
    config.drainCycles = 4000;
    config.seed = 0xFEEDFACE;

    auto run = [&]() {
        Simulator sim(mesh, makeRouting({.name = "west-first"}),
                      makeTraffic("transpose", mesh), config);
        return sim.run();
    };
    const SimResult a = run();
    const SimResult b = run();

    EXPECT_EQ(a.topology, b.topology);
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.traffic, b.traffic);
    EXPECT_EQ(a.offeredLoad, b.offeredLoad);
    EXPECT_EQ(a.generatedLoad, b.generatedLoad);
    EXPECT_EQ(a.acceptedFlitsPerCycle, b.acceptedFlitsPerCycle);
    EXPECT_EQ(a.acceptedFlitsPerUsec, b.acceptedFlitsPerUsec);
    EXPECT_EQ(a.acceptedPerNodeCycle, b.acceptedPerNodeCycle);
    EXPECT_EQ(a.avgTotalLatencyUs, b.avgTotalLatencyUs);
    EXPECT_EQ(a.avgNetworkLatencyUs, b.avgNetworkLatencyUs);
    EXPECT_EQ(a.p50TotalLatencyUs, b.p50TotalLatencyUs);
    EXPECT_EQ(a.p99TotalLatencyUs, b.p99TotalLatencyUs);
    EXPECT_EQ(a.avgHops, b.avgHops);
    EXPECT_EQ(a.avgSourceQueuePackets, b.avgSourceQueuePackets);
    EXPECT_EQ(a.meanChannelUtilization, b.meanChannelUtilization);
    EXPECT_EQ(a.maxChannelUtilization, b.maxChannelUtilization);
    EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
    EXPECT_EQ(a.packetsFinished, b.packetsFinished);
    EXPECT_EQ(a.packetsUnfinished, b.packetsUnfinished);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.sustainable, b.sustainable);

    EXPECT_EQ(a.totalLatencyStats.count(),
              b.totalLatencyStats.count());
    EXPECT_EQ(a.totalLatencyStats.mean(),
              b.totalLatencyStats.mean());
    EXPECT_EQ(a.totalLatencyStats.variance(),
              b.totalLatencyStats.variance());
    EXPECT_EQ(a.networkLatencyStats.mean(),
              b.networkLatencyStats.mean());
    EXPECT_EQ(a.hopsStats.mean(), b.hopsStats.mean());
    EXPECT_EQ(a.queueStats.mean(), b.queueStats.mean());
    ASSERT_TRUE(
        a.latencyHistogram.sameShape(b.latencyHistogram));
    EXPECT_EQ(a.latencyHistogram.count(),
              b.latencyHistogram.count());
    for (std::size_t i = 0; i < a.latencyHistogram.numBins(); ++i)
        EXPECT_EQ(a.latencyHistogram.binCount(i),
                  b.latencyHistogram.binCount(i));
}

TEST(Simulator, LatencyHistogramLayoutFollowsConfig)
{
    const Mesh mesh(4, 4);
    SimConfig config = scriptedConfig();
    config.warmupCycles = 0;
    config.measureCycles = 500;
    config.drainCycles = 500;
    config.latencyHistMinUs = 0.1;
    config.latencyHistMaxUs = 100.0;
    config.latencyHistBins = 64;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({3, 3}), 4);
    const SimResult result = sim.run();
    EXPECT_EQ(result.latencyHistogram.spacing(),
              Histogram::Spacing::Log);
    EXPECT_EQ(result.latencyHistogram.numBins(), 64u);
    EXPECT_DOUBLE_EQ(result.latencyHistogram.low(), 0.1);
    EXPECT_DOUBLE_EQ(result.latencyHistogram.high(), 100.0);
    EXPECT_EQ(result.latencyHistogram.count(), 1u);
}

TEST(SimConfigValidate, DefaultConfigurationIsValid)
{
    EXPECT_TRUE(SimConfig{}.validate().empty());
    EXPECT_TRUE(scriptedConfig().validate().empty());
}

TEST(SimConfigValidate, CollectsEveryErrorDescriptively)
{
    SimConfig config;
    config.load = -0.5;
    config.bufferDepth = 0;
    config.measureCycles = 0;
    config.queueSampleInterval = 0;
    config.latencyHistMinUs = -1.0;
    config.latencyHistBins = 0;
    config.trace.events = true;
    config.trace.eventCapacity = 0;
    const std::vector<std::string> errors = config.validate();
    // One message per broken field (latencyHistMaxUs also trips
    // because the min is negative), each naming the field.
    EXPECT_GE(errors.size(), 7u);
    auto mentions = [&](const char *field) {
        for (const std::string &e : errors)
            if (e.find(field) != std::string::npos)
                return true;
        return false;
    };
    EXPECT_TRUE(mentions("load"));
    EXPECT_TRUE(mentions("bufferDepth"));
    EXPECT_TRUE(mentions("measureCycles"));
    EXPECT_TRUE(mentions("queueSampleInterval"));
    EXPECT_TRUE(mentions("latencyHistMinUs"));
    EXPECT_TRUE(mentions("latencyHistBins"));
    EXPECT_TRUE(mentions("eventCapacity"));
}

TEST(SimConfigValidate, RejectsFaultsBeyondTheSchedule)
{
    SimConfig config;
    config.faults.failChannel(0);
    config.faultCycle =
        config.warmupCycles + config.measureCycles +
        config.drainCycles;
    const auto errors = config.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("faultCycle"), std::string::npos);
    EXPECT_NE(errors[0].find("never activate"), std::string::npos);

    config.faultCycle = 0; // activation at start is fine
    EXPECT_TRUE(config.validate().empty());
}

TEST(SimulatorDeath, ConstructionIsFatalOnInvalidConfig)
{
    const Mesh mesh(3, 3);
    SimConfig config = scriptedConfig();
    config.measureCycles = 0;
    EXPECT_DEATH(Simulator(mesh, makeRouting({.name = "xy"}),
                           nullptr, config),
                 "measureCycles");
}

TEST(SimulatorDeath, RejectsSelfMessages)
{
    const Mesh mesh(3, 3);
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  scriptedConfig());
    EXPECT_DEATH(sim.injectMessage(2, 2, 5), "leave their source");
}

TEST(SimulatorDeath, ValidatesAlgorithmTopologyPairs)
{
    const Mesh mesh3({3, 3, 3});
    EXPECT_DEATH(Simulator(mesh3, makeRouting({.name = "west-first"}), nullptr,
                           scriptedConfig()),
                 "2D");
}

} // namespace
} // namespace turnnet
