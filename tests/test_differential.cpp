/**
 * @file
 * Differential-oracle tests: every candidate engine (the fast
 * active-worm worklist, the batch flat-sweep engine, and the sharded
 * data-parallel engine at several shard counts) must be
 * bit-identical to the reference full-scan engine — same (cycle,
 * event) stream, same counters, same fabric state after every
 * cycle — across the full matrix of routing algorithms, traffic
 * patterns, arbitration policies, buffer depths, fault activations,
 * virtual-channel configurations, and trace settings. The whole
 * file is parameterized over (candidate, shard count), so the
 * matrix runs once per engine configuration.
 */

#include <gtest/gtest.h>

#include "turnnet/harness/differential.hpp"
#include "turnnet/network/engine.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/topology_registry.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/traffic/pattern.hpp"
#include "turnnet/workload/tracegen.hpp"

namespace turnnet {
namespace {

/** Moderate-load config sized for a lockstep unit test. */
SimConfig
loadedConfig(double load = 0.2, std::uint64_t seed = 17)
{
    SimConfig config;
    config.load = load;
    config.lengths = MessageLengthMix::fixed(6);
    config.seed = seed;
    return config;
}

void
expectIdentical(const DifferentialReport &report)
{
    EXPECT_TRUE(report.identical)
        << "diverged at cycle " << report.divergenceCycle << ": "
        << report.detail;
    EXPECT_GT(report.eventsCompared, 0u);
}

/** One candidate configuration: an engine plus, for engines that
 *  support sharding, the worker-team width to force. */
struct EngineParam
{
    SimEngine engine;
    /** SimConfig::shards for both simulators (serial engines
     *  ignore it; 0 would mean one shard per hardware thread). */
    unsigned shards;
};

/** Candidate engine configuration under oracle (reference is always
 *  the other side). */
class Differential : public ::testing::TestWithParam<EngineParam>
{
  protected:
    SimEngine candidate() const { return GetParam().engine; }

    /** Apply the parameterized shard count to a test's config. */
    SimConfig
    cfg(SimConfig config) const
    {
        config.shards = GetParam().shards;
        return config;
    }
};

std::string
engineParamName(const ::testing::TestParamInfo<EngineParam> &param)
{
    std::string name =
        EngineRegistry::instance().at(param.param.engine).name;
    if (param.param.shards != 0)
        name += "_s" + std::to_string(param.param.shards);
    return name;
}

// Shard counts probe the partition edge cases: 1 (sharded code path,
// serial team), 2 and 4 (even splits), 7 (uneven split that does not
// divide the 25- and 16-node fabrics used below).
INSTANTIATE_TEST_SUITE_P(
    Engines, Differential,
    ::testing::Values(EngineParam{SimEngine::Fast, 0},
                      EngineParam{SimEngine::Batch, 0},
                      EngineParam{SimEngine::Sharded, 1},
                      EngineParam{SimEngine::Sharded, 2},
                      EngineParam{SimEngine::Sharded, 4},
                      EngineParam{SimEngine::Sharded, 7}),
    engineParamName);

TEST_P(Differential, MeshAlgorithmByTrafficMatrix)
{
    // Every mesh routing algorithm crossed with structurally
    // different traffic patterns. 600 cycles at load 0.2 keeps each
    // cell around a second while driving real contention.
    const Mesh mesh(5, 5);
    const char *algorithms[] = {"xy",         "west-first",
                                "north-last", "negative-first",
                                "abonf",      "odd-even"};
    const char *patterns[] = {"uniform", "transpose", "hotspot"};
    for (const char *algo : algorithms) {
        for (const char *pattern : patterns) {
            const DifferentialReport report = runDifferential(
                mesh, makeVcRouting({.name = algo}),
                makeTraffic(pattern, mesh), cfg(loadedConfig()), 600,
                candidate());
            SCOPED_TRACE(std::string(algo) + " / " + pattern);
            expectIdentical(report);
        }
    }
}

TEST_P(Differential, NonminimalAndMisrouteWaits)
{
    // Nonminimal relations add the misroute-wait machinery to the
    // allocation path; sweep the wait knob including misroute-now.
    const Mesh mesh(5, 5);
    for (const Cycle wait : {Cycle{0}, Cycle{4}}) {
        for (const char *algo :
             {"west-first", "negative-first", "abopl"}) {
            SimConfig config = loadedConfig(0.25, 23);
            config.misrouteAfterWait = wait;
            const DifferentialReport report = runDifferential(
                mesh,
                makeVcRouting({.name = algo, .minimal = false}),
                makeTraffic("uniform", mesh), cfg(config), 600,
                candidate());
            SCOPED_TRACE(std::string(algo) + "-nm wait " +
                         std::to_string(wait));
            expectIdentical(report);
        }
    }
}

TEST_P(Differential, RandomArbitrationConsumesIdenticalRngStreams)
{
    // Random input/output policies draw from the arbiter RNG during
    // allocation; the engines agree only if they visit the same
    // contended routers in the same order with the same draws.
    const Mesh mesh(5, 5);
    SimConfig config = loadedConfig(0.3, 5);
    config.inputPolicy = InputPolicy::Random;
    config.outputPolicy = OutputPolicy::Random;
    const DifferentialReport report = runDifferential(
        mesh, makeVcRouting({.name = "odd-even"}),
        makeTraffic("uniform", mesh), cfg(config), 800,
        candidate());
    expectIdentical(report);
}

TEST_P(Differential, DeepBuffersAndCountersTelemetry)
{
    // Deeper buffers change which worms extend versus stall;
    // counters telemetry exercises the occupancy/utilization feeds
    // that the candidate engines only touch for non-empty units.
    const Mesh mesh(4, 4);
    for (const std::size_t depth : {std::size_t{1}, std::size_t{4}}) {
        for (const bool counters : {false, true}) {
            SimConfig config = loadedConfig(0.3, 29);
            config.bufferDepth = depth;
            config.trace.counters = counters;
            const DifferentialReport report = runDifferential(
                mesh, makeVcRouting({.name = "north-last"}),
                makeTraffic("transpose", mesh), cfg(config), 600,
                candidate());
            SCOPED_TRACE("depth " + std::to_string(depth) +
                         (counters ? " +counters" : ""));
            expectIdentical(report);
        }
    }
}

TEST_P(Differential, TorusWraparoundAlgorithms)
{
    const Torus torus(std::vector<int>{4, 4});
    for (const char *algo :
         {"nf-torus", "xy-first-hop-wrap", "nf-first-hop-wrap"}) {
        const DifferentialReport report = runDifferential(
            torus, makeVcRouting({.name = algo}),
            makeTraffic("uniform", torus),
            cfg(loadedConfig(0.15, 41)), 600, candidate());
        SCOPED_TRACE(algo);
        expectIdentical(report);
    }
}

TEST_P(Differential, HypercubePCube)
{
    const Hypercube cube(4);
    const DifferentialReport report = runDifferential(
        cube, makeVcRouting({.name = "p-cube", .dims = 4}),
        makeTraffic("uniform", cube), cfg(loadedConfig(0.15, 7)),
        600, candidate());
    expectIdentical(report);
}

TEST_P(Differential, DragonflySchemes)
{
    // The hierarchical port layout (asymmetric local all-to-all plus
    // global links) and the VC-rank escalation of the dragonfly
    // schemes; 36 routers do not divide evenly by any of the shard
    // counts, so the span partitioner's remainders are exercised
    // too. Valiant misroutes from injection, so run it misroute-now.
    const std::unique_ptr<Topology> df =
        TopologyRegistry::instance().build("dragonfly(4,2,2)");
    for (const char *algo :
         {"dragonfly-min", "dragonfly-val", "dragonfly-ugal"}) {
        SimConfig config = loadedConfig(0.2, 37);
        if (std::string(algo) == "dragonfly-val")
            config.misrouteAfterWait = 0;
        const DifferentialReport report = runDifferential(
            *df, makeVcRouting({.name = algo}),
            makeTraffic("uniform", *df), cfg(config), 600,
            candidate());
        SCOPED_TRACE(algo);
        expectIdentical(report);
    }
}

TEST_P(Differential, FatTreeNcaWithSwitchNodes)
{
    // The first indirect fabric: non-endpoint switch nodes must
    // never inject, and up/down port asymmetry stresses the
    // engines' channel walks. 20 nodes (8 terminals + 12 switches)
    // leave a remainder at shard counts 7 and 4.
    const std::unique_ptr<Topology> ft =
        TopologyRegistry::instance().build("fat-tree(2,3)");
    const DifferentialReport report = runDifferential(
        *ft, makeVcRouting({.name = "fattree-nca"}),
        makeTraffic("uniform", *ft), cfg(loadedConfig(0.2, 43)),
        600, candidate());
    expectIdentical(report);
}

TEST_P(Differential, VirtualChannelLinkArbitration)
{
    // numVcs > 1 engages per-link arbitration among virtual
    // channels — the subtlest piece of both candidate engines,
    // which must rebuild the full scan's candidate pools (the fast
    // engine from active units only, the batch engine from the raw
    // route column).
    const Torus torus(std::vector<int>{4, 4});
    const DifferentialReport dateline = runDifferential(
        torus, makeVcRouting({.name = "dateline"}),
        makeTraffic("uniform", torus), cfg(loadedConfig(0.25, 13)),
        800, candidate());
    expectIdentical(dateline);

    const Mesh mesh(5, 5);
    const DifferentialReport doubley = runDifferential(
        mesh, makeVcRouting({.name = "double-y"}),
        makeTraffic("transpose", mesh), cfg(loadedConfig(0.3, 19)),
        800, candidate());
    expectIdentical(doubley);
}

TEST_P(Differential, TraceReplayWorkload)
{
    // Causal trace replay drives injection from the serial
    // generation phase: dependency waves of contention, then idle
    // gaps while successors wait on tails — the engines must agree
    // through both. 400 cycles covers the full stencil makespan
    // plus a drained-idle stretch.
    const Mesh mesh(4, 4);
    SimConfig config;
    config.traceWorkload =
        makeStencilTrace({.nx = 4, .ny = 4, .iterations = 2});
    config.seed = 11;
    const DifferentialReport report = runDifferential(
        mesh, makeVcRouting({.name = "west-first"}), nullptr,
        cfg(config), 400, candidate());
    expectIdentical(report);
}

TEST_P(Differential, TraceReplayUnderFaultActivation)
{
    // Mid-replay fault activation resolves records out of the
    // delivery path (purges and unreachable flags), which feeds the
    // eligibility heap — the whole chain must stay lockstep.
    const Mesh mesh(4, 4);
    FaultSet faults;
    faults.failNode(mesh, mesh.nodeOf({1, 1}));
    SimConfig config;
    config.traceWorkload =
        makeStencilTrace({.nx = 4, .ny = 4, .iterations = 3});
    config.faults = faults;
    config.faultCycle = 55;
    config.seed = 13;
    const DifferentialReport report = runDifferential(
        mesh,
        makeVcRouting({.name = "negative-first-ft",
                       .fault_set = faults}),
        nullptr, cfg(config), 500, candidate());
    expectIdentical(report);
}

TEST_P(Differential, BurstyArrivals)
{
    // The MMPP source threads per-node on/off dwell draws through
    // the generator RNG; the engines agree only if the modulated
    // arrival stream (and the load spikes it causes) is identical.
    const Mesh mesh(5, 5);
    SimConfig config = loadedConfig(0.2, 53);
    config.burst =
        BurstModel{.onFraction = 0.3, .meanOnCycles = 64.0};
    const DifferentialReport report = runDifferential(
        mesh, makeVcRouting({.name = "odd-even"}),
        makeTraffic("uniform", mesh), cfg(config), 800,
        candidate());
    expectIdentical(report);
}

TEST_P(Differential, MidRunFaultActivationWithPurges)
{
    // Fault activation purges worms mid-flight and flags queued
    // unreachable packets; both engines must sever, drop, and keep
    // routing identically afterwards.
    const Mesh mesh(5, 5);
    const FaultSet faults = FaultSet::randomLinks(mesh, 3, 77);
    SimConfig config = loadedConfig(0.2, 31);
    config.faults = faults;
    config.faultCycle = 200;
    DifferentialHarness harness(
        mesh,
        makeVcRouting({.name = "negative-first-ft",
                       .fault_set = faults}),
        makeTraffic("uniform", mesh), cfg(config), candidate());
    const DifferentialReport report = harness.run(800);
    expectIdentical(report);
    EXPECT_TRUE(harness.reference().faultsActive());
    EXPECT_EQ(harness.reference().flitsDropped(),
              harness.candidate().flitsDropped());
}

TEST_P(Differential, FaultObliviousContrastRun)
{
    // A fault-oblivious relation piles worms up behind the dead
    // link; the permanently stalled fabric is the stress case for
    // the stall bookkeeping of both candidate engines.
    const Mesh mesh(4, 4);
    FaultSet faults;
    faults.failLink(mesh, mesh.nodeOf({1, 0}),
                    Direction::positive(0));
    SimConfig config = loadedConfig(0.15, 47);
    config.faults = faults;
    config.faultCycle = 100;
    const DifferentialReport report = runDifferential(
        mesh, makeVcRouting({.name = "xy"}),
        makeTraffic("uniform", mesh), cfg(config), 800,
        candidate());
    expectIdentical(report);
}

TEST_P(Differential, DeadlockProneBaselineAgreesOnTheVerdict)
{
    // The fully adaptive baseline deadlocks under pressure; the
    // engines must agree cycle-for-cycle through wait-cycle
    // formation, the frozen aftermath, and the watchdog verdict.
    const Mesh mesh(4, 4);
    SimConfig config = loadedConfig(0.5, 2);
    config.watchdogCycles = 300;
    DifferentialHarness harness(
        mesh, makeVcRouting({.name = "fully-adaptive"}),
        makeTraffic("uniform", mesh), cfg(config), candidate());
    const DifferentialReport report = harness.run(2500);
    expectIdentical(report);
    EXPECT_EQ(harness.reference().deadlockDetected(),
              harness.candidate().deadlockDetected());
}

TEST_P(Differential, ScriptedWormsAndIdleCycles)
{
    // Scripted mode: long worms crossing shared links, idle gaps
    // where the worklist goes empty, and late re-injection into a
    // drained fabric.
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.0;
    DifferentialHarness harness(mesh,
                                makeVcRouting({.name = "xy"}),
                                nullptr, cfg(config), candidate());
    harness.injectBoth(mesh.nodeOf({0, 0}), mesh.nodeOf({3, 3}), 8);
    harness.injectBoth(mesh.nodeOf({0, 3}), mesh.nodeOf({3, 0}), 8);
    harness.injectBoth(mesh.nodeOf({2, 0}), mesh.nodeOf({2, 3}), 8);
    for (int i = 0; i < 120 && !harness.diverged(); ++i)
        harness.stepBoth();
    // The fabric drains well before cycle 120; step through the
    // idle stretch, then wake it again.
    ASSERT_TRUE(harness.reference().idle());
    ASSERT_TRUE(harness.candidate().idle());
    harness.injectBoth(mesh.nodeOf({1, 1}), mesh.nodeOf({3, 2}), 5);
    for (int i = 0; i < 60 && !harness.diverged(); ++i)
        harness.stepBoth();
    expectIdentical(harness.report());
    EXPECT_EQ(harness.reference().packetsDelivered(), 4u);
    EXPECT_EQ(harness.candidate().packetsDelivered(), 4u);
}

TEST(Differential, ReferenceSimulatorClassForcesTheEngine)
{
    const Mesh mesh(3, 3);
    SimConfig config;
    config.engine = SimEngine::Fast;
    ReferenceSimulator sim(mesh, makeRouting({.name = "xy"}),
                           nullptr, config);
    EXPECT_EQ(sim.config().engine, SimEngine::Reference);
}

TEST(Differential, RegistryIsTheSingleSourceOfEngineNames)
{
    const EngineRegistry &reg = EngineRegistry::instance();
    EXPECT_EQ(reg.all().size(), 4u);
    EXPECT_STREQ(reg.at(SimEngine::Reference).name, "reference");
    EXPECT_STREQ(reg.at(SimEngine::Fast).name, "fast");
    EXPECT_STREQ(reg.at(SimEngine::Batch).name, "batch");
    EXPECT_STREQ(reg.at(SimEngine::Sharded).name, "sharded");
    for (const EngineDescriptor &engine : reg.all()) {
        EXPECT_EQ(reg.parse(engine.name).id, engine.id);
        EXPECT_EQ(reg.find(engine.name), &reg.at(engine.id));
    }
    EXPECT_EQ(reg.find("turbo"), nullptr);
}

TEST(Differential, RegistryCapabilitiesDriveCandidateLists)
{
    const EngineRegistry &reg = EngineRegistry::instance();
    // The reference engine is the oracle baseline, never a speedup
    // candidate; every other engine is timed against it.
    EXPECT_FALSE(reg.at(SimEngine::Reference).benchCandidate);
    const auto candidates = reg.benchCandidates();
    EXPECT_EQ(candidates.size(), reg.all().size() - 1);
    // Only the sharded engine honors SimConfig::shards.
    for (const EngineDescriptor &engine : reg.all()) {
        EXPECT_EQ(engine.supportsSharding,
                  engine.id == SimEngine::Sharded);
    }
    // The usage string names every engine, for CLI errors.
    const std::string usage = reg.usageNames();
    for (const EngineDescriptor &engine : reg.all())
        EXPECT_NE(usage.find(engine.name), std::string::npos);
}

TEST(DifferentialDeath, UnknownEngineNameIsFatal)
{
    EXPECT_DEATH(EngineRegistry::instance().parse("turbo"),
                 "unknown engine");
    // "batched" must not silently alias "batch".
    EXPECT_DEATH(EngineRegistry::instance().parse("batched"),
                 "unknown engine");
}

} // namespace
} // namespace turnnet
