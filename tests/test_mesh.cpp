/**
 * @file
 * Tests for the n-dimensional mesh topology.
 */

#include <gtest/gtest.h>

#include <set>

#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

TEST(Mesh, NamesItself)
{
    EXPECT_EQ(Mesh(16, 16).name(), "mesh(16x16)");
    EXPECT_EQ(Mesh({2, 3, 4}).name(), "mesh(2x3x4)");
}

TEST(Mesh, InteriorNodeHasAllNeighbors)
{
    const Mesh mesh(4, 4);
    const NodeId center = mesh.nodeOf({1, 1});
    EXPECT_EQ(mesh.neighbor(center, Direction::positive(0)),
              mesh.nodeOf({2, 1}));
    EXPECT_EQ(mesh.neighbor(center, Direction::negative(0)),
              mesh.nodeOf({0, 1}));
    EXPECT_EQ(mesh.neighbor(center, Direction::positive(1)),
              mesh.nodeOf({1, 2}));
    EXPECT_EQ(mesh.neighbor(center, Direction::negative(1)),
              mesh.nodeOf({1, 0}));
}

TEST(Mesh, BoundaryNodesLackOutwardNeighbors)
{
    const Mesh mesh(4, 4);
    const NodeId origin = mesh.nodeOf({0, 0});
    EXPECT_EQ(mesh.neighbor(origin, Direction::negative(0)),
              kInvalidNode);
    EXPECT_EQ(mesh.neighbor(origin, Direction::negative(1)),
              kInvalidNode);
    const NodeId corner = mesh.nodeOf({3, 3});
    EXPECT_EQ(mesh.neighbor(corner, Direction::positive(0)),
              kInvalidNode);
    EXPECT_EQ(mesh.neighbor(corner, Direction::positive(1)),
              kInvalidNode);
}

TEST(Mesh, NodeDegreeRangesFromNTo2N)
{
    // Paper, Section 1: nodes have from n to 2n neighbors.
    const Mesh mesh({3, 3, 3});
    int min_deg = 100;
    int max_deg = 0;
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        const int deg = mesh.directionsFrom(n).size();
        min_deg = std::min(min_deg, deg);
        max_deg = std::max(max_deg, deg);
    }
    EXPECT_EQ(min_deg, 3);
    EXPECT_EQ(max_deg, 6);
}

TEST(Mesh, DistanceIsManhattan)
{
    const Mesh mesh(8, 8);
    EXPECT_EQ(mesh.distance(mesh.nodeOf({0, 0}), mesh.nodeOf({7, 7})),
              14);
    EXPECT_EQ(mesh.distance(mesh.nodeOf({3, 5}), mesh.nodeOf({5, 2})),
              5);
    EXPECT_EQ(mesh.distance(2, 2), 0);
}

TEST(Mesh, MinimalDirectionsPointAtDestination)
{
    const Mesh mesh(4, 4);
    const NodeId src = mesh.nodeOf({1, 1});
    DirectionSet dirs =
        mesh.minimalDirections(src, mesh.nodeOf({3, 0}));
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(Direction::positive(0)));
    EXPECT_TRUE(dirs.contains(Direction::negative(1)));
    EXPECT_TRUE(mesh.minimalDirections(src, src).empty());
}

TEST(Mesh, ChannelCountMatchesFormula)
{
    // A w x h mesh has 2*(2wh - w - h) unidirectional channels.
    for (const auto &[w, h] : {std::pair{4, 4}, {8, 8}, {5, 3}}) {
        const Mesh mesh(w, h);
        EXPECT_EQ(mesh.numChannels(), 2 * (2 * w * h - w - h))
            << mesh.name();
    }
}

TEST(Mesh, ChannelTableIsConsistent)
{
    const Mesh mesh(5, 3);
    std::set<std::pair<NodeId, int>> seen;
    for (ChannelId c = 0; c < mesh.numChannels(); ++c) {
        const Channel &ch = mesh.channel(c);
        EXPECT_EQ(ch.id, c);
        EXPECT_EQ(mesh.neighbor(ch.src, ch.dir), ch.dst);
        EXPECT_FALSE(ch.wrap);
        EXPECT_EQ(mesh.channelFrom(ch.src, ch.dir), c);
        // Channels are unique per (src, dir).
        EXPECT_TRUE(seen.insert({ch.src, ch.dir.index()}).second);
    }
    EXPECT_FALSE(mesh.hasWrapChannels());
}

TEST(Mesh, ChannelsFromAndIntoAgree)
{
    const Mesh mesh(4, 4);
    int from_total = 0;
    int into_total = 0;
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        from_total += static_cast<int>(mesh.channelsFrom(n).size());
        into_total += static_cast<int>(mesh.channelsInto(n).size());
        for (ChannelId c : mesh.channelsFrom(n))
            EXPECT_EQ(mesh.channel(c).src, n);
        for (ChannelId c : mesh.channelsInto(n))
            EXPECT_EQ(mesh.channel(c).dst, n);
    }
    EXPECT_EQ(from_total, mesh.numChannels());
    EXPECT_EQ(into_total, mesh.numChannels());
}

TEST(Mesh, NeighborRelationIsSymmetric)
{
    const Mesh mesh(std::vector<int>{3, 4});
    for (NodeId n = 0; n < mesh.numNodes(); ++n) {
        mesh.directionsFrom(n).forEach([&](Direction d) {
            const NodeId m = mesh.neighbor(n, d);
            ASSERT_NE(m, kInvalidNode);
            EXPECT_EQ(mesh.neighbor(m, d.reversed()), n);
        });
    }
}

TEST(Mesh, UniformMeanDistanceMatchesClosedForm)
{
    // For a k x k mesh the mean Manhattan distance over ordered
    // pairs (including self) is 2(k^2-1)/(3k); the paper's 10.61
    // hops for uniform traffic in the 16x16 mesh is this value
    // (10.625) sampled without self-pairs.
    const int k = 16;
    const Mesh mesh(k, k);
    double sum = 0.0;
    for (NodeId a = 0; a < mesh.numNodes(); ++a)
        for (NodeId b = 0; b < mesh.numNodes(); ++b)
            sum += mesh.distance(a, b);
    const double mean =
        sum / (static_cast<double>(mesh.numNodes()) * mesh.numNodes());
    EXPECT_NEAR(mean, 2.0 * (k * k - 1) / (3.0 * k), 1e-9);
}

} // namespace
} // namespace turnnet
