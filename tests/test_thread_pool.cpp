/**
 * @file
 * Tests for the deterministic thread pool: exactly-once execution,
 * exception propagation, reuse across task grids, and degenerate
 * shapes (empty grids, more workers than tasks) — plus the WorkSpan
 * persistent worker team the sharded cycle engine runs its
 * per-cycle spans on (every run() a barrier, slot 0 inline, many
 * runs per team lifetime).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "turnnet/common/thread_pool.hpp"

namespace turnnet {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SlotWritesNeedNoSynchronization)
{
    // The sweep engine's usage pattern: each task writes only its
    // own output slot, so a plain vector needs no locks.
    ThreadPool pool(8);
    std::vector<std::size_t> out(257, 0);
    pool.parallelFor(out.size(),
                     [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, MoreWorkersThanTasks)
{
    ThreadPool pool(16);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(3, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyGridIsANoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, PoolIsReusableAcrossGrids)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int round = 0; round < 10; ++round) {
        pool.parallelFor(100, [&](std::size_t i) {
            sum += static_cast<long>(i);
        });
    }
    EXPECT_EQ(sum.load(), 10L * (99L * 100L / 2L));
}

TEST(ThreadPool, FirstExceptionIsRethrownAndRestStillRun)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](std::size_t i) {
                                      ++hits[i];
                                      if (i % 16 == 7)
                                          throw std::runtime_error(
                                              "task failed");
                                  }),
                 std::runtime_error);
    // Every task still executed exactly once despite the failures.
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
    // The pool stays usable after a failed grid.
    std::atomic<int> ok{0};
    pool.parallelFor(8, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, HardwareWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1u);
    const ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), ThreadPool::hardwareWorkers());
}

TEST(WorkSpan, EverySlotRunsExactlyOncePerRun)
{
    WorkSpan span(4);
    EXPECT_EQ(span.teamSize(), 4u);
    std::vector<std::atomic<int>> hits(4);
    span.run([&](unsigned slot) { ++hits[slot]; });
    for (std::size_t s = 0; s < hits.size(); ++s)
        EXPECT_EQ(hits[s].load(), 1) << s;
}

TEST(WorkSpan, TeamOfOneRunsInlineWithoutThreads)
{
    // teamSize <= 1 must not spawn workers: the sharded engine at
    // --shards 1 degenerates to a plain serial call.
    WorkSpan span(1);
    EXPECT_EQ(span.teamSize(), 1u);
    const auto caller = std::this_thread::get_id();
    std::thread::id ran_on;
    span.run([&](unsigned slot) {
        EXPECT_EQ(slot, 0u);
        ran_on = std::this_thread::get_id();
    });
    EXPECT_EQ(ran_on, caller);
}

TEST(WorkSpan, ZeroTeamSizeCountsAsOne)
{
    WorkSpan span(0);
    EXPECT_EQ(span.teamSize(), 1u);
    int runs = 0;
    span.run([&](unsigned) { ++runs; });
    EXPECT_EQ(runs, 1);
}

TEST(WorkSpan, SlotZeroStaysOnTheCallingThread)
{
    // The engine drives the span from the simulator's thread and
    // gives slot 0 the first shard; that shard's writes need no
    // handoff before the serial merge that follows the barrier.
    WorkSpan span(3);
    const auto caller = std::this_thread::get_id();
    std::thread::id slot0;
    span.run([&](unsigned slot) {
        if (slot == 0)
            slot0 = std::this_thread::get_id();
    });
    EXPECT_EQ(slot0, caller);
}

TEST(WorkSpan, RunIsABarrier)
{
    // run() must not return before every slot finished: writes made
    // by any slot are visible to the caller afterwards without
    // synchronization — the property the per-cycle merges rely on.
    WorkSpan span(4);
    std::vector<std::size_t> out(4, 0);
    for (std::size_t round = 1; round <= 50; ++round) {
        span.run([&](unsigned slot) { out[slot] = round; });
        for (std::size_t s = 0; s < out.size(); ++s)
            ASSERT_EQ(out[s], round) << "slot " << s;
    }
}

TEST(WorkSpan, ReusableForManyRunsPerTeam)
{
    // Three spans per simulated cycle, thousands of cycles per run:
    // the team must survive many epochs without drift or deadlock.
    WorkSpan span(3);
    std::vector<std::atomic<long>> sums(3);
    const int rounds = 3000;
    for (int round = 0; round < rounds; ++round)
        span.run([&](unsigned slot) { sums[slot] += 1; });
    for (std::size_t s = 0; s < sums.size(); ++s)
        EXPECT_EQ(sums[s].load(), rounds) << s;
}

TEST(WorkSpan, FirstExceptionIsRethrownAndSpanStaysUsable)
{
    WorkSpan span(4);
    std::vector<std::atomic<int>> hits(4);
    EXPECT_THROW(span.run([&](unsigned slot) {
        ++hits[slot];
        if (slot == 2)
            throw std::runtime_error("slot failed");
    }),
                 std::runtime_error);
    // Every slot still ran despite the failure...
    for (std::size_t s = 0; s < hits.size(); ++s)
        EXPECT_EQ(hits[s].load(), 1) << s;
    // ...and the team survives a poisoned epoch.
    std::atomic<int> ok{0};
    span.run([&](unsigned) { ++ok; });
    EXPECT_EQ(ok.load(), 4);
}

TEST(WorkSpan, OversubscribedTeamStillCompletes)
{
    // More slots than hardware threads degrades to cooperative
    // scheduling (yield/sleep), never to livelock — the shape every
    // --shards N > nproc run has.
    WorkSpan span(ThreadPool::hardwareWorkers() * 2 + 1);
    std::vector<std::atomic<int>> hits(span.teamSize());
    for (int round = 0; round < 20; ++round)
        span.run([&](unsigned slot) { ++hits[slot]; });
    for (std::size_t s = 0; s < hits.size(); ++s)
        EXPECT_EQ(hits[s].load(), 20) << s;
}

} // namespace
} // namespace turnnet
