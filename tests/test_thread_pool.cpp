/**
 * @file
 * Tests for the deterministic thread pool: exactly-once execution,
 * exception propagation, reuse across task grids, and degenerate
 * shapes (empty grids, more workers than tasks).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "turnnet/common/thread_pool.hpp"

namespace turnnet {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SlotWritesNeedNoSynchronization)
{
    // The sweep engine's usage pattern: each task writes only its
    // own output slot, so a plain vector needs no locks.
    ThreadPool pool(8);
    std::vector<std::size_t> out(257, 0);
    pool.parallelFor(out.size(),
                     [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, MoreWorkersThanTasks)
{
    ThreadPool pool(16);
    std::vector<std::atomic<int>> hits(3);
    pool.parallelFor(3, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, EmptyGridIsANoOp)
{
    ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, PoolIsReusableAcrossGrids)
{
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int round = 0; round < 10; ++round) {
        pool.parallelFor(100, [&](std::size_t i) {
            sum += static_cast<long>(i);
        });
    }
    EXPECT_EQ(sum.load(), 10L * (99L * 100L / 2L));
}

TEST(ThreadPool, FirstExceptionIsRethrownAndRestStillRun)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](std::size_t i) {
                                      ++hits[i];
                                      if (i % 16 == 7)
                                          throw std::runtime_error(
                                              "task failed");
                                  }),
                 std::runtime_error);
    // Every task still executed exactly once despite the failures.
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
    // The pool stays usable after a failed grid.
    std::atomic<int> ok{0};
    pool.parallelFor(8, [&](std::size_t) { ++ok; });
    EXPECT_EQ(ok.load(), 8);
}

TEST(ThreadPool, HardwareWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareWorkers(), 1u);
    const ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), ThreadPool::hardwareWorkers());
}

} // namespace
} // namespace turnnet
