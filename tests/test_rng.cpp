/**
 * @file
 * Tests for the xoshiro256** generator and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "turnnet/common/rng.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BoundedIsApproximatelyUniform)
{
    Rng rng(11);
    const int buckets = 8;
    const int draws = 80000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(buckets)];
    const double expected = static_cast<double>(draws) / buckets;
    for (int c : counts)
        EXPECT_NEAR(c, expected, expected * 0.06);
}

TEST(Rng, NextIntInclusiveRange)
{
    Rng rng(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.nextInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInHalfOpenUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, OpenLowDoubleNeverZero)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.nextDoubleOpenLow(), 0.0);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng rng(23);
    const double mean = 40.0;
    double sum = 0.0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        sum += rng.nextExponential(mean);
    EXPECT_NEAR(sum / draws, mean, mean * 0.03);
}

TEST(Rng, ExponentialIsMemoryless)
{
    // P(X > 2m) should be about e^-2.
    Rng rng(29);
    const double mean = 10.0;
    int over = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        over += rng.nextExponential(mean) > 2 * mean;
    EXPECT_NEAR(static_cast<double>(over) / draws, std::exp(-2.0),
                0.01);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(31);
    const int draws = 100000;
    int hits = 0;
    for (int i = 0; i < draws; ++i)
        hits += rng.nextBernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Rng, DeriveSeedStreamsAreStableAndDistinct)
{
    // deriveSeed is a pure function of (base, index): the per-node
    // streams of a simulation are reconstructible from the config
    // seed alone, and no two nodes of even a 4096-node fabric share
    // a stream seed.
    std::set<std::uint64_t> seeds;
    for (std::uint64_t node = 0; node < 4096; ++node) {
        const std::uint64_t s = deriveSeed(123, node);
        EXPECT_EQ(s, deriveSeed(123, node));
        seeds.insert(s);
    }
    EXPECT_EQ(seeds.size(), 4096u);

    // Neighboring nodes' streams diverge immediately, not after a
    // warm-up — splitmix64 finalization, not a lagged counter.
    Rng a(deriveSeed(123, 7));
    Rng b(deriveSeed(123, 8));
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, PerNodeStreamsAreInterleavingInvariant)
{
    // The property that makes per-node streams shard-safe: a
    // stream's n-th draw depends only on its own position, never on
    // how draws from other nodes' streams are interleaved around
    // it. A serial node-order sweep and two concurrent shards
    // consuming their own nodes' streams therefore see identical
    // values.
    const std::uint64_t base = 99;
    std::vector<std::uint64_t> serial[4];
    for (std::uint64_t node = 0; node < 4; ++node) {
        Rng rng(deriveSeed(base, node));
        for (int i = 0; i < 64; ++i)
            serial[node].push_back(rng.next());
    }

    // "Shard 0" owns nodes {0, 1}, "shard 1" owns {2, 3}; each
    // interleaves its own nodes draw-by-draw, the opposite of the
    // serial order above.
    Rng s0a(deriveSeed(base, 0));
    Rng s0b(deriveSeed(base, 1));
    Rng s1a(deriveSeed(base, 2));
    Rng s1b(deriveSeed(base, 3));
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(s1a.next(), serial[2][i]);
        EXPECT_EQ(s0a.next(), serial[0][i]);
        EXPECT_EQ(s1b.next(), serial[3][i]);
        EXPECT_EQ(s0b.next(), serial[1][i]);
    }
}

TEST(Rng, RandomPolicyDrawsAreShardCountInvariant)
{
    // End-to-end: router arbitration draws come from per-node
    // streams seeded deriveSeed(seed, node), so a sharded run
    // consumes every stream exactly like the serial engines do,
    // whatever the team width. Random input AND output selection
    // make every arbitration a draw site; a 6x6 mesh split 3 or 5
    // ways puts several shard boundaries through the fabric.
    const Mesh mesh(6, 6);
    const auto resultAt = [&mesh](unsigned shards) {
        SimConfig config;
        config.load = 0.30;
        config.seed = 77;
        config.engine = SimEngine::Sharded;
        config.shards = shards;
        config.inputPolicy = InputPolicy::Random;
        config.outputPolicy = OutputPolicy::Random;
        config.warmupCycles = 200;
        config.measureCycles = 1200;
        config.drainCycles = 200;
        Simulator sim(mesh, makeRouting({.name = "west-first"}),
                      makeTraffic("uniform", mesh), config);
        return sim.run();
    };
    const SimResult base = resultAt(1);
    EXPECT_GT(base.packetsFinished, 0u);
    for (const unsigned shards : {3u, 5u}) {
        const SimResult r = resultAt(shards);
        EXPECT_EQ(r.packetsFinished, base.packetsFinished)
            << shards << " shards";
        EXPECT_EQ(r.packetsMeasured, base.packetsMeasured);
        EXPECT_DOUBLE_EQ(r.avgTotalLatencyUs,
                         base.avgTotalLatencyUs);
        EXPECT_DOUBLE_EQ(r.avgHops, base.avgHops);
        EXPECT_DOUBLE_EQ(r.acceptedFlitsPerUsec,
                         base.acceptedFlitsPerUsec);
    }
}

TEST(RngDeath, BoundedRejectsZero)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextBounded(0), "positive bound");
}

} // namespace
} // namespace turnnet
