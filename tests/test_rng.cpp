/**
 * @file
 * Tests for the xoshiro256** generator and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "turnnet/common/rng.hpp"

namespace turnnet {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(7);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.nextBounded(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BoundedIsApproximatelyUniform)
{
    Rng rng(11);
    const int buckets = 8;
    const int draws = 80000;
    std::vector<int> counts(buckets, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[rng.nextBounded(buckets)];
    const double expected = static_cast<double>(draws) / buckets;
    for (int c : counts)
        EXPECT_NEAR(c, expected, expected * 0.06);
}

TEST(Rng, NextIntInclusiveRange)
{
    Rng rng(13);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.nextInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInHalfOpenUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, OpenLowDoubleNeverZero)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.nextDoubleOpenLow(), 0.0);
}

TEST(Rng, ExponentialHasRequestedMean)
{
    Rng rng(23);
    const double mean = 40.0;
    double sum = 0.0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        sum += rng.nextExponential(mean);
    EXPECT_NEAR(sum / draws, mean, mean * 0.03);
}

TEST(Rng, ExponentialIsMemoryless)
{
    // P(X > 2m) should be about e^-2.
    Rng rng(29);
    const double mean = 10.0;
    int over = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        over += rng.nextExponential(mean) > 2 * mean;
    EXPECT_NEAR(static_cast<double>(over) / draws, std::exp(-2.0),
                0.01);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(31);
    const int draws = 100000;
    int hits = 0;
    for (int i = 0; i < draws; ++i)
        hits += rng.nextBernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(RngDeath, BoundedRejectsZero)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextBounded(0), "positive bound");
}

} // namespace
} // namespace turnnet
