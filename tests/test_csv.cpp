/**
 * @file
 * Tests for the table formatter.
 */

#include <gtest/gtest.h>

#include "turnnet/common/csv.hpp"

namespace turnnet {
namespace {

Table
sampleTable()
{
    Table t("Sample");
    t.setHeader({"name", "value"});
    t.beginRow();
    t.cell(std::string("alpha"));
    t.cell(static_cast<long long>(42));
    t.beginRow();
    t.cell(std::string("beta"));
    t.cell(3.14159, 2);
    return t;
}

TEST(Table, TracksShape)
{
    const Table t = sampleTable();
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
    EXPECT_EQ(t.at(0, 0), "alpha");
    EXPECT_EQ(t.at(0, 1), "42");
    EXPECT_EQ(t.at(1, 1), "3.14");
}

TEST(Table, AlignedRenderingContainsEverything)
{
    const std::string out = sampleTable().toAligned();
    EXPECT_NE(out.find("Sample"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(Table, AlignedColumnsHaveEqualWidths)
{
    const std::string out = sampleTable().toAligned();
    // Every rendered line between rules has the same length.
    std::size_t expected = 0;
    std::size_t start = out.find('\n') + 1; // skip the title
    while (start < out.size()) {
        const std::size_t end = out.find('\n', start);
        const std::size_t len = end - start;
        if (expected == 0)
            expected = len;
        EXPECT_EQ(len, expected);
        start = end + 1;
    }
}

TEST(Table, CsvRendering)
{
    const std::string csv = sampleTable().toCsv();
    EXPECT_EQ(csv, "name,value\nalpha,42\nbeta,3.14\n");
}

TEST(Table, CsvQuotingEscapesSpecials)
{
    EXPECT_EQ(csvQuote("plain"), "plain");
    EXPECT_EQ(csvQuote("a,b"), "\"a,b\"");
    EXPECT_EQ(csvQuote("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvQuote("line\nbreak"), "\"line\nbreak\"");
}

TEST(Table, UnsignedAndFloatCells)
{
    Table t;
    t.setHeader({"a"});
    t.beginRow();
    t.cell(static_cast<unsigned long long>(7));
    t.beginRow();
    t.cell(0.125, 3);
    EXPECT_EQ(t.at(0, 0), "7");
    EXPECT_EQ(t.at(1, 0), "0.125");
}

TEST(TableDeath, CellWithoutRowPanics)
{
    Table t;
    EXPECT_DEATH(t.cell(std::string("x")), "beginRow");
}

} // namespace
} // namespace turnnet
