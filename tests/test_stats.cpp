/**
 * @file
 * Tests for the streaming statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "turnnet/common/rng.hpp"
#include "turnnet/common/stats.hpp"

namespace turnnet {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation)
{
    const std::vector<double> xs{3.0, -1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
    RunningStats s;
    for (double x : xs)
        s.add(x);

    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= xs.size() - 1;

    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_EQ(s.min(), -1.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), mean * xs.size(), 1e-9);
}

TEST(RunningStats, MergeEqualsCombinedStream)
{
    Rng rng(99);
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 10 - 5;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(Histogram, CountsBucketsAndTails)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);  // underflow
    h.add(0.0);   // bin 0
    h.add(9.999); // bin 9
    h.add(10.0);  // overflow
    h.add(5.5);   // bin 5
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, QuantilesOfUniformData)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 10000; ++i)
        h.add(i % 100 + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
    EXPECT_NEAR(h.quantile(1.0), 100.0, 1.5);
}

TEST(Histogram, QuantileOnEmptyIsZero)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(TrendProbe, FlatSeriesIsBounded)
{
    TrendProbe probe;
    for (int i = 0; i < 1000; ++i)
        probe.add(5.0 + (i % 3));
    EXPECT_FALSE(probe.growing());
}

TEST(TrendProbe, LinearGrowthIsDetected)
{
    TrendProbe probe;
    for (int i = 0; i < 1000; ++i)
        probe.add(static_cast<double>(i) * 0.5);
    EXPECT_TRUE(probe.growing());
}

TEST(TrendProbe, SmallAbsoluteGrowthIsTolerated)
{
    // Grows from 0 to ~1: inside the absolute slack.
    TrendProbe probe(2.0, 1.5);
    for (int i = 0; i < 1000; ++i)
        probe.add(static_cast<double>(i) / 1000.0);
    EXPECT_FALSE(probe.growing());
}

TEST(TrendProbe, NeedsMinimumSamples)
{
    TrendProbe probe;
    for (int i = 0; i < 5; ++i)
        probe.add(static_cast<double>(i * 100));
    EXPECT_FALSE(probe.growing());
}

TEST(RateMeter, ComputesEventsPerCycle)
{
    RateMeter meter;
    meter.start(100);
    meter.add(5);
    meter.add(5);
    meter.stop(120);
    EXPECT_EQ(meter.events(), 10u);
    EXPECT_EQ(meter.cycles(), 20u);
    EXPECT_NEAR(meter.rate(), 0.5, 1e-12);
}

TEST(RateMeter, IgnoresEventsBeforeStart)
{
    RateMeter meter;
    meter.add(7);
    meter.start(0);
    meter.stop(10);
    EXPECT_EQ(meter.events(), 0u);
}

TEST(RateMeter, EmptyWindowHasZeroRate)
{
    RateMeter meter;
    meter.start(5);
    meter.add(3);
    meter.stop(5);
    EXPECT_EQ(meter.rate(), 0.0);
}

} // namespace
} // namespace turnnet
