/**
 * @file
 * Tests for the streaming statistics helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "turnnet/common/rng.hpp"
#include "turnnet/common/stats.hpp"

namespace turnnet {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation)
{
    const std::vector<double> xs{3.0, -1.0, 4.0, 1.0, 5.0, 9.0, 2.0};
    RunningStats s;
    for (double x : xs)
        s.add(x);

    double mean = 0.0;
    for (double x : xs)
        mean += x;
    mean /= xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= xs.size() - 1;

    EXPECT_EQ(s.count(), xs.size());
    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_EQ(s.min(), -1.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), mean * xs.size(), 1e-9);
}

TEST(RunningStats, MergeEqualsCombinedStream)
{
    Rng rng(99);
    RunningStats all;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 10 - 5;
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(Histogram, CountsBucketsAndTails)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);  // underflow
    h.add(0.0);   // bin 0
    h.add(9.999); // bin 9
    h.add(10.0);  // overflow
    h.add(5.5);   // bin 5
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, QuantilesOfUniformData)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 10000; ++i)
        h.add(i % 100 + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
    EXPECT_NEAR(h.quantile(1.0), 100.0, 1.5);
}

TEST(Histogram, QuantileOnEmptyIsZero)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, LogBinEdgesAreMonotoneWithEqualRatios)
{
    const Histogram h = Histogram::logSpaced(0.05, 1e6, 4096);
    EXPECT_EQ(h.spacing(), Histogram::Spacing::Log);
    EXPECT_NEAR(h.binLow(0), 0.05, 1e-12);
    const double ratio = h.binLow(1) / h.binLow(0);
    EXPECT_GT(ratio, 1.0);
    for (std::size_t i : {std::size_t{1}, std::size_t{100},
                          std::size_t{2048}, std::size_t{4095}}) {
        EXPECT_GT(h.binLow(i), h.binLow(i - 1));
        EXPECT_NEAR(h.binLow(i) / h.binLow(i - 1), ratio,
                    ratio * 1e-9);
    }
}

TEST(Histogram, LogSpacedResolvesLowLatencyQuantiles)
{
    // The simulator's regression scenario: latencies of a few tens
    // of microseconds measured by a histogram whose range must also
    // cover the saturated tail (up to 1e6 us). The retired fixed
    // grid -- Histogram(0, 50000, 2048), 24.4 us linear bins -- put
    // this entire population inside bin 0 and reported quantiles
    // with ~100% error; log spacing keeps the relative error under
    // a fraction of a percent.
    Rng rng(7);
    Histogram log_bins = Histogram::logSpaced(0.05, 1e6, 4096);
    Histogram coarse_linear(0.0, 50000.0, 2048);
    std::vector<double> xs;
    for (int i = 0; i < 20000; ++i) {
        const double x = 10.0 + 10.0 * rng.nextDouble();
        xs.push_back(x);
        log_bins.add(x);
        coarse_linear.add(x);
    }
    std::sort(xs.begin(), xs.end());
    const double exact_p50 = xs[xs.size() / 2];
    const double exact_p99 =
        xs[static_cast<std::size_t>(0.99 * xs.size())];

    EXPECT_NEAR(log_bins.quantile(0.5), exact_p50,
                exact_p50 * 0.01);
    EXPECT_NEAR(log_bins.quantile(0.99), exact_p99,
                exact_p99 * 0.01);
    // The coarse linear grid cannot separate p50 from p99 at all:
    // every sample lands in one 24.4 us bin.
    EXPECT_EQ(coarse_linear.binCount(0), 20000u);
}

TEST(Histogram, MergeEqualsCombinedStream)
{
    Rng rng(123);
    Histogram all = Histogram::logSpaced(0.1, 1000.0, 256);
    Histogram a = all;
    Histogram b = all;
    for (int i = 0; i < 5000; ++i) {
        // Include under- and overflow samples.
        const double x = 0.05 * std::exp(rng.nextDouble() * 10.5);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_EQ(a.underflow(), all.underflow());
    EXPECT_EQ(a.overflow(), all.overflow());
    for (std::size_t i = 0; i < all.numBins(); ++i)
        EXPECT_EQ(a.binCount(i), all.binCount(i));
    EXPECT_EQ(a.quantile(0.5), all.quantile(0.5));
    EXPECT_EQ(a.quantile(0.99), all.quantile(0.99));
}

TEST(Histogram, MergeRejectsMismatchedShapes)
{
    Histogram log_bins = Histogram::logSpaced(0.05, 1e6, 4096);
    Histogram linear_bins(0.05, 1e6, 4096);
    Histogram narrower = Histogram::logSpaced(0.05, 1e5, 4096);
    Histogram fewer = Histogram::logSpaced(0.05, 1e6, 2048);
    EXPECT_TRUE(log_bins.sameShape(log_bins));
    EXPECT_FALSE(log_bins.sameShape(linear_bins));
    EXPECT_FALSE(log_bins.sameShape(narrower));
    EXPECT_FALSE(log_bins.sameShape(fewer));
    EXPECT_DEATH(log_bins.merge(linear_bins), "identical bin");
}

TEST(Histogram, LogSpacedRequiresPositiveRange)
{
    EXPECT_DEATH(Histogram::logSpaced(0.0, 10.0, 8), "positive");
}

TEST(TrendProbe, FlatSeriesIsBounded)
{
    TrendProbe probe;
    for (int i = 0; i < 1000; ++i)
        probe.add(5.0 + (i % 3));
    EXPECT_FALSE(probe.growing());
}

TEST(TrendProbe, LinearGrowthIsDetected)
{
    TrendProbe probe;
    for (int i = 0; i < 1000; ++i)
        probe.add(static_cast<double>(i) * 0.5);
    EXPECT_TRUE(probe.growing());
}

TEST(TrendProbe, SmallAbsoluteGrowthIsTolerated)
{
    // Grows from 0 to ~1: inside the absolute slack.
    TrendProbe probe(2.0, 1.5);
    for (int i = 0; i < 1000; ++i)
        probe.add(static_cast<double>(i) / 1000.0);
    EXPECT_FALSE(probe.growing());
}

TEST(TrendProbe, NeedsMinimumSamples)
{
    TrendProbe probe;
    for (int i = 0; i < 5; ++i)
        probe.add(static_cast<double>(i * 100));
    EXPECT_FALSE(probe.growing());
}

TEST(RateMeter, ComputesEventsPerCycle)
{
    RateMeter meter;
    meter.start(100);
    meter.add(5);
    meter.add(5);
    meter.stop(120);
    EXPECT_EQ(meter.events(), 10u);
    EXPECT_EQ(meter.cycles(), 20u);
    EXPECT_NEAR(meter.rate(), 0.5, 1e-12);
}

TEST(RateMeter, IgnoresEventsBeforeStart)
{
    RateMeter meter;
    meter.add(7);
    meter.start(0);
    meter.stop(10);
    EXPECT_EQ(meter.events(), 0u);
}

TEST(RateMeter, EmptyWindowHasZeroRate)
{
    RateMeter meter;
    meter.start(5);
    meter.add(3);
    meter.stop(5);
    EXPECT_EQ(meter.rate(), 0.0);
}

} // namespace
} // namespace turnnet
