/**
 * @file
 * Tests for directions and direction sets.
 */

#include <gtest/gtest.h>

#include "turnnet/topology/direction.hpp"

namespace turnnet {
namespace {

TEST(Direction, LocalProperties)
{
    const Direction d = Direction::local();
    EXPECT_TRUE(d.isLocal());
    EXPECT_FALSE(d.isPositive());
    EXPECT_FALSE(d.isNegative());
    EXPECT_EQ(d.toString(), "local");
}

TEST(Direction, CompassNames)
{
    EXPECT_EQ(Direction::negative(0).toString(), "west");
    EXPECT_EQ(Direction::positive(0).toString(), "east");
    EXPECT_EQ(Direction::negative(1).toString(), "south");
    EXPECT_EQ(Direction::positive(1).toString(), "north");
    EXPECT_EQ(Direction::positive(2).toString(), "+d2");
    EXPECT_EQ(Direction::negative(5).toString(), "-d5");
}

TEST(Direction, IndexRoundTrip)
{
    for (int idx = 0; idx < 16; ++idx) {
        const Direction d = Direction::fromIndex(idx);
        EXPECT_EQ(d.index(), idx);
    }
    EXPECT_EQ(Direction::negative(3).index(), 6);
    EXPECT_EQ(Direction::positive(3).index(), 7);
}

TEST(Direction, Reversal)
{
    EXPECT_EQ(Direction::positive(2).reversed(), Direction::negative(2));
    EXPECT_EQ(Direction::negative(0).reversed(), Direction::positive(0));
}

TEST(Direction, Ordering)
{
    EXPECT_LT(Direction::negative(0), Direction::positive(0));
    EXPECT_LT(Direction::positive(0), Direction::negative(1));
}

TEST(DirectionSet, InsertEraseContains)
{
    DirectionSet s;
    EXPECT_TRUE(s.empty());
    s.insert(Direction::positive(1));
    s.insert(Direction::negative(3));
    EXPECT_EQ(s.size(), 2);
    EXPECT_TRUE(s.contains(Direction::positive(1)));
    EXPECT_FALSE(s.contains(Direction::negative(1)));
    s.erase(Direction::positive(1));
    EXPECT_FALSE(s.contains(Direction::positive(1)));
    EXPECT_EQ(s.size(), 1);
}

TEST(DirectionSet, AllOfDims)
{
    const DirectionSet s = DirectionSet::all(3);
    EXPECT_EQ(s.size(), 6);
    for (int d = 0; d < 3; ++d) {
        EXPECT_TRUE(s.contains(Direction::positive(d)));
        EXPECT_TRUE(s.contains(Direction::negative(d)));
    }
    EXPECT_FALSE(s.contains(Direction::positive(3)));
}

TEST(DirectionSet, SetAlgebra)
{
    DirectionSet a;
    a.insert(Direction::positive(0));
    a.insert(Direction::positive(1));
    DirectionSet b;
    b.insert(Direction::positive(1));
    b.insert(Direction::negative(2));

    EXPECT_EQ((a | b).size(), 3);
    EXPECT_EQ((a & b).size(), 1);
    EXPECT_TRUE((a & b).contains(Direction::positive(1)));
    EXPECT_EQ((a - b).size(), 1);
    EXPECT_TRUE((a - b).contains(Direction::positive(0)));
}

TEST(DirectionSet, IterationInIndexOrder)
{
    DirectionSet s;
    s.insert(Direction::positive(2));
    s.insert(Direction::negative(0));
    s.insert(Direction::positive(1));
    std::vector<int> indices;
    s.forEach([&](Direction d) { indices.push_back(d.index()); });
    ASSERT_EQ(indices.size(), 3u);
    EXPECT_TRUE(std::is_sorted(indices.begin(), indices.end()));
}

TEST(DirectionSet, FirstIsLowestIndex)
{
    DirectionSet s;
    s.insert(Direction::positive(3));
    s.insert(Direction::negative(1));
    EXPECT_EQ(s.first(), Direction::negative(1));
}

TEST(DirectionSet, ToString)
{
    DirectionSet s;
    s.insert(Direction::negative(0));
    s.insert(Direction::positive(1));
    EXPECT_EQ(s.toString(), "{west, north}");
}

TEST(DirectionSetDeath, FirstOnEmpty)
{
    EXPECT_DEATH(DirectionSet().first(), "empty");
}

TEST(DirectionDeath, LocalHasNoIndex)
{
    EXPECT_DEATH(Direction::local().index(), "no index");
}

TEST(DirectionDeath, LocalHasNoReverse)
{
    EXPECT_DEATH(Direction::local().reversed(), "no reverse");
}

} // namespace
} // namespace turnnet
