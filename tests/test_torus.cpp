/**
 * @file
 * Tests for the k-ary n-cube (torus) topology.
 */

#include <gtest/gtest.h>

#include "turnnet/topology/torus.hpp"

namespace turnnet {
namespace {

TEST(Torus, NamesItself)
{
    EXPECT_EQ(Torus(4, 2).name(), "4-ary 2-cube");
    EXPECT_EQ(Torus(std::vector<int>{3, 5}).name(), "torus(3x5)");
}

TEST(Torus, EveryNodeHas2nNeighbors)
{
    const Torus torus(4, 2);
    for (NodeId n = 0; n < torus.numNodes(); ++n)
        EXPECT_EQ(torus.directionsFrom(n).size(), 4);
}

TEST(Torus, WraparoundNeighbors)
{
    const Torus torus(4, 2);
    const NodeId east_edge = torus.nodeOf({3, 1});
    EXPECT_EQ(torus.neighbor(east_edge, Direction::positive(0)),
              torus.nodeOf({0, 1}));
    const NodeId west_edge = torus.nodeOf({0, 1});
    EXPECT_EQ(torus.neighbor(west_edge, Direction::negative(0)),
              torus.nodeOf({3, 1}));
}

TEST(Torus, WrapHopsOnlyAtEdges)
{
    const Torus torus(5, 2);
    EXPECT_TRUE(torus.isWrapHop(torus.nodeOf({4, 2}),
                                Direction::positive(0)));
    EXPECT_TRUE(torus.isWrapHop(torus.nodeOf({0, 2}),
                                Direction::negative(0)));
    EXPECT_FALSE(torus.isWrapHop(torus.nodeOf({2, 2}),
                                 Direction::positive(0)));
    EXPECT_TRUE(torus.hasWrapChannels());
}

TEST(Torus, ChannelCountIs2nN)
{
    const Torus torus(4, 3);
    EXPECT_EQ(torus.numChannels(), 2 * 3 * torus.numNodes());
}

TEST(Torus, WrapChannelCount)
{
    // Per dimension, one wrap channel per direction per line of
    // nodes: 2 * N / k channels.
    const Torus torus(4, 2);
    int wraps = 0;
    for (ChannelId c = 0; c < torus.numChannels(); ++c)
        wraps += torus.channel(c).wrap;
    EXPECT_EQ(wraps, 2 * 2 * torus.numNodes() / 4);
}

TEST(Torus, DistanceUsesShorterWay)
{
    const Torus torus(8, 1);
    EXPECT_EQ(torus.distance(torus.nodeOf({0}), torus.nodeOf({3})), 3);
    EXPECT_EQ(torus.distance(torus.nodeOf({0}), torus.nodeOf({5})), 3);
    EXPECT_EQ(torus.distance(torus.nodeOf({0}), torus.nodeOf({4})), 4);
}

TEST(Torus, MinimalDirectionsBreakTies)
{
    const Torus torus(4, 1);
    // Distance 2 both ways: both directions are minimal.
    const DirectionSet dirs = torus.minimalDirections(
        torus.nodeOf({0}), torus.nodeOf({2}));
    EXPECT_EQ(dirs.size(), 2);

    // Distance 1 forward: only positive is minimal.
    const DirectionSet fwd = torus.minimalDirections(
        torus.nodeOf({0}), torus.nodeOf({1}));
    EXPECT_EQ(fwd.size(), 1);
    EXPECT_TRUE(fwd.contains(Direction::positive(0)));
}

TEST(Torus, NeighborRelationIsSymmetric)
{
    const Torus torus(std::vector<int>{3, 4});
    for (NodeId n = 0; n < torus.numNodes(); ++n) {
        torus.directionsFrom(n).forEach([&](Direction d) {
            EXPECT_EQ(torus.neighbor(torus.neighbor(n, d),
                                     d.reversed()),
                      n);
        });
    }
}

TEST(TorusDeath, RejectsRadixTwo)
{
    EXPECT_DEATH(Torus(2, 3), "use Hypercube");
}

} // namespace
} // namespace turnnet
