/**
 * @file
 * Randomized mini-fuzz: random topologies, turn-model algorithms,
 * and scripted message sets. Invariants checked on every draw:
 * every packet is delivered, flits are conserved, hop counts are
 * exact for minimal routing and bounded for nonminimal, and nothing
 * deadlocks. Seeded deterministically so failures reproduce.
 */

#include <gtest/gtest.h>

#include <memory>

#include "turnnet/common/rng.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

struct DrawnConfig
{
    std::unique_ptr<Topology> topo;
    std::string algorithm;
};

DrawnConfig
draw(Rng &rng)
{
    DrawnConfig out;
    switch (rng.nextBounded(4)) {
      case 0:
        out.topo = std::make_unique<Mesh>(
            static_cast<int>(rng.nextInt(2, 6)),
            static_cast<int>(rng.nextInt(2, 6)));
        break;
      case 1:
        out.topo = std::make_unique<Mesh>(std::vector<int>{
            static_cast<int>(rng.nextInt(2, 4)),
            static_cast<int>(rng.nextInt(2, 4)),
            static_cast<int>(rng.nextInt(2, 4))});
        break;
      case 2:
        out.topo = std::make_unique<Hypercube>(
            static_cast<int>(rng.nextInt(2, 5)));
        break;
      default:
        out.topo = std::make_unique<Mesh>(
            static_cast<int>(rng.nextInt(2, 9)), 2);
        break;
    }
    const int dims = out.topo->numDims();
    const char *mesh_algorithms[] = {
        "dimension-order", "negative-first", "abonf", "abopl",
        "negative-first-nm"};
    out.algorithm =
        mesh_algorithms[rng.nextBounded(dims >= 2 ? 5 : 2)];
    return out;
}

TEST(Fuzz, ScriptedBatchesAlwaysDrainCorrectly)
{
    Rng rng(0xF00D);
    for (int iteration = 0; iteration < 60; ++iteration) {
        const DrawnConfig drawn = draw(rng);
        const Topology &topo = *drawn.topo;
        const RoutingPtr routing =
            makeRouting({.name = drawn.algorithm, .dims = topo.numDims()});

        SimConfig config;
        config.load = 0.0;
        config.watchdogCycles = 300000;
        config.bufferDepth = 1 + rng.nextBounded(3);
        config.inputPolicy = rng.nextBernoulli(0.5)
                                 ? InputPolicy::Fcfs
                                 : InputPolicy::Random;
        config.outputPolicy = rng.nextBernoulli(0.5)
                                  ? OutputPolicy::LowestDim
                                  : OutputPolicy::Random;
        config.seed = 77 + iteration;
        Simulator sim(topo, routing, nullptr, config);

        std::uint64_t delivered = 0;
        std::uint64_t min_hops_violations = 0;
        sim.onDelivered = [&](const PacketInfo &info, Cycle) {
            ++delivered;
            const int dist = topo.distance(info.src, info.dest);
            if (routing->isMinimal()) {
                if (static_cast<int>(info.hops) != dist)
                    ++min_hops_violations;
            } else if (static_cast<int>(info.hops) < dist) {
                ++min_hops_violations;
            }
        };

        const int messages = 5 + static_cast<int>(rng.nextBounded(40));
        std::uint64_t flits = 0;
        for (int m = 0; m < messages; ++m) {
            const NodeId src = static_cast<NodeId>(
                rng.nextBounded(topo.numNodes()));
            NodeId dst = static_cast<NodeId>(
                rng.nextBounded(topo.numNodes()));
            if (dst == src)
                dst = (dst + 1) % topo.numNodes();
            const auto len = static_cast<std::uint32_t>(
                1 + rng.nextBounded(60));
            sim.injectMessage(src, dst, len);
            flits += len;
        }

        ASSERT_TRUE(sim.runUntilIdle(500000))
            << drawn.algorithm << " on " << topo.name()
            << " iteration " << iteration;
        EXPECT_FALSE(sim.deadlockDetected());
        EXPECT_EQ(delivered, static_cast<std::uint64_t>(messages));
        EXPECT_EQ(sim.flitsDelivered(), flits);
        EXPECT_EQ(min_hops_violations, 0u)
            << drawn.algorithm << " on " << topo.name();
    }
}

TEST(Fuzz, RandomLoadsNeverWedgeTurnModelAlgorithms)
{
    Rng rng(0xBEEF);
    for (int iteration = 0; iteration < 12; ++iteration) {
        const DrawnConfig drawn = draw(rng);
        const Topology &topo = *drawn.topo;
        const RoutingPtr routing =
            makeRouting({.name = drawn.algorithm, .dims = topo.numDims()});

        SimConfig config;
        config.load = 0.02 + 0.3 * rng.nextDouble();
        config.lengths = MessageLengthMix::paperDefault();
        config.warmupCycles = 200;
        config.measureCycles = 3000;
        config.drainCycles = 500;
        config.watchdogCycles = 300000;
        config.seed = 1000 + iteration;

        Simulator sim(topo, routing,
                      makeTraffic("uniform", topo), config);
        const SimResult result = sim.run();
        EXPECT_FALSE(result.deadlocked)
            << drawn.algorithm << " on " << topo.name();
        EXPECT_GT(result.packetsFinished, 0u);
    }
}

} // namespace
} // namespace turnnet
