/**
 * @file
 * Metamorphic symmetry tests: applying a topology automorphism
 * (reflection, rotation, transposition, hypercube relabeling) to a
 * scripted workload must permute the per-channel flit counters
 * exactly by the induced channel permutation, and leave every
 * aggregate — per-packet latency multiset, delivered flit and
 * packet counts, drain time — bit-identical. The simulator knows
 * nothing about symmetry, so agreement across these transforms is
 * strong evidence the routing and switching model is implemented
 * uniformly across the fabric rather than special-cased per
 * coordinate.
 *
 * Each algorithm is paired with transforms it is equivariant under
 * (e.g. west-first treats the x axis asymmetrically, so only the
 * y reflection applies; negative-first and transposition both
 * treat the dimensions symmetrically). Tie-breaking (FCFS port
 * order, lowest-dimension output selection) follows the global
 * channel enumeration and is not equivariant in general, so the
 * workloads are scripted with staggered injections that keep
 * arbitration deterministic under relabeling; they exercise shared
 * links and multi-worm contention all the same.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "turnnet/network/engine.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/trace/counters.hpp"
#include "turnnet/traffic/pattern.hpp"
#include "turnnet/workload/trace.hpp"

namespace turnnet {
namespace {

using NodeMap = std::function<NodeId(NodeId)>;

/** One scripted injection: message enqueued at a fixed cycle. */
struct Event
{
    Cycle at;
    NodeId src;
    NodeId dst;
    std::uint32_t length;
};

/** Channel permutation induced by a node automorphism: channel
 *  (src, dst) maps to the channel (map(src), map(dst)). */
std::vector<ChannelId>
channelPermutation(const Topology &topo, const NodeMap &map)
{
    std::map<std::pair<NodeId, NodeId>, ChannelId> byEndpoints;
    for (ChannelId c = 0; c < topo.numChannels(); ++c) {
        const Channel &ch = topo.channel(c);
        byEndpoints[{ch.src, ch.dst}] = c;
    }
    std::vector<ChannelId> perm(topo.numChannels());
    for (ChannelId c = 0; c < topo.numChannels(); ++c) {
        const Channel &ch = topo.channel(c);
        const auto it =
            byEndpoints.find({map(ch.src), map(ch.dst)});
        EXPECT_NE(it, byEndpoints.end())
            << "node map is not an automorphism: channel " << c
            << " has no image";
        perm[c] = it->second;
    }
    return perm;
}

/** Outcome of one scripted run. */
struct RunRecord
{
    std::vector<Cycle> latencies; ///< sorted per-packet latencies
    std::vector<std::uint64_t> channelFlits;
    std::uint64_t flitsDelivered = 0;
    std::uint64_t packetsDelivered = 0;
    Cycle drainedAt = 0;
};

/** Engine configurations the symmetry must survive: the serial
 *  engines plus the sharded engine at an even and an uneven
 *  (non-dividing) width. */
constexpr std::pair<SimEngine, unsigned> kEngineCases[] = {
    {SimEngine::Reference, 0}, {SimEngine::Fast, 0},
    {SimEngine::Batch, 0},     {SimEngine::Sharded, 2},
    {SimEngine::Sharded, 7}};

std::string
engineCaseName(SimEngine engine, unsigned shards)
{
    std::string name = EngineRegistry::instance().at(engine).name;
    if (shards != 0)
        name += "/s" + std::to_string(shards);
    return name;
}

void
runScripted(const Topology &topo, const RoutingPtr &routing,
            const std::vector<Event> &events, SimEngine engine,
            unsigned shards, RunRecord &record)
{
    SimConfig config;
    config.load = 0.0;
    config.trace.counters = true;
    config.engine = engine;
    config.shards = shards;
    Simulator sim(topo, routing, nullptr, config);
    sim.onDelivered = [&](const PacketInfo &info, Cycle now) {
        record.latencies.push_back(now - info.created);
    };
    for (const Event &e : events) {
        while (sim.now() < e.at)
            sim.step();
        ASSERT_NE(sim.injectMessage(e.src, e.dst, e.length), 0u);
    }
    ASSERT_TRUE(sim.runUntilIdle(20000));
    record.drainedAt = sim.now();
    record.flitsDelivered = sim.flitsDelivered();
    record.packetsDelivered = sim.packetsDelivered();
    record.channelFlits = sim.counters()->channelFlits();
    std::sort(record.latencies.begin(), record.latencies.end());
}

/** Run the workload and its image under @p map on every cycle-loop
 *  engine; assert permuted counters and identical aggregates. The
 *  symmetry must survive each engine's iteration scheme on its own,
 *  not just on the oracle-checked default. */
void
expectEquivariant(const Topology &topo, const std::string &algorithm,
                  const std::vector<Event> &events,
                  const NodeMap &map, const std::string &label)
{
    SCOPED_TRACE(algorithm + " under " + label);
    std::vector<Event> mapped;
    mapped.reserve(events.size());
    for (const Event &e : events)
        mapped.push_back(
            Event{e.at, map(e.src), map(e.dst), e.length});

    for (const auto &[engine, shards] : kEngineCases) {
        SCOPED_TRACE(engineCaseName(engine, shards));
        RunRecord base;
        RunRecord image;
        runScripted(topo,
                    makeRouting({.name = algorithm,
                                 .dims = topo.numDims()}),
                    events, engine, shards, base);
        runScripted(topo,
                    makeRouting({.name = algorithm,
                                 .dims = topo.numDims()}),
                    mapped, engine, shards, image);

        // Aggregates are bit-identical (integer cycle counts, so
        // "bit-identical" and "equal" coincide; no FP averaging
        // here).
        EXPECT_EQ(base.latencies, image.latencies);
        EXPECT_EQ(base.flitsDelivered, image.flitsDelivered);
        EXPECT_EQ(base.packetsDelivered, image.packetsDelivered);
        EXPECT_EQ(base.drainedAt, image.drainedAt);

        // Per-channel counters permute exactly.
        const std::vector<ChannelId> perm =
            channelPermutation(topo, map);
        ASSERT_EQ(base.channelFlits.size(),
                  image.channelFlits.size());
        for (ChannelId c = 0; c < topo.numChannels(); ++c) {
            EXPECT_EQ(base.channelFlits[c],
                      image.channelFlits[perm[c]])
                << "channel " << c << " (image " << perm[c]
                << ") under " << label;
        }
    }
}

/**
 * A contention-bearing scripted workload on a W x H mesh: worms
 * crossing both axes, sharing columns and rows, with staggered
 * start cycles so FCFS arbitration is decided by arrival time (a
 * relabeling-invariant) rather than port enumeration.
 */
std::vector<Event>
meshWorkload(const Mesh &mesh)
{
    return {
        {0, mesh.nodeOf({0, 0}), mesh.nodeOf({4, 4}), 8},
        {3, mesh.nodeOf({2, 1}), mesh.nodeOf({2, 4}), 6},
        {7, mesh.nodeOf({4, 0}), mesh.nodeOf({0, 4}), 8},
        {12, mesh.nodeOf({1, 3}), mesh.nodeOf({3, 0}), 5},
        {18, mesh.nodeOf({0, 2}), mesh.nodeOf({4, 2}), 10},
        {25, mesh.nodeOf({3, 3}), mesh.nodeOf({1, 1}), 6},
        {33, mesh.nodeOf({4, 4}), mesh.nodeOf({0, 0}), 8},
        {41, mesh.nodeOf({2, 4}), mesh.nodeOf({2, 0}), 6},
    };
}

/** reflect dimension @p dim of a mesh coordinate. */
NodeMap
reflect(const Mesh &mesh, int dim)
{
    return [&mesh, dim](NodeId n) {
        Coord c = mesh.coordOf(n);
        c[dim] = mesh.radix(dim) - 1 - c[dim];
        return mesh.nodeOf(c);
    };
}

/** 180-degree rotation (reflect every dimension). */
NodeMap
rotate180(const Mesh &mesh)
{
    return [&mesh](NodeId n) {
        Coord c = mesh.coordOf(n);
        for (std::size_t d = 0; d < c.size(); ++d)
            c[d] = mesh.radix(static_cast<int>(d)) - 1 - c[d];
        return mesh.nodeOf(c);
    };
}

/** Swap x and y on a square mesh. */
NodeMap
transpose(const Mesh &mesh)
{
    return [&mesh](NodeId n) {
        Coord c = mesh.coordOf(n);
        std::swap(c[0], c[1]);
        return mesh.nodeOf(c);
    };
}

TEST(Metamorphic, XyUnderReflectionsAndRotation)
{
    // Dimension-order routing treats each axis uniformly in both
    // directions: the full reflection group applies.
    const Mesh mesh(5, 5);
    const std::vector<Event> events = meshWorkload(mesh);
    expectEquivariant(mesh, "xy", events, reflect(mesh, 0),
                      "reflect-x");
    expectEquivariant(mesh, "xy", events, reflect(mesh, 1),
                      "reflect-y");
    expectEquivariant(mesh, "xy", events, rotate180(mesh),
                      "rotate-180");
}

TEST(Metamorphic, WestFirstUnderYReflection)
{
    // West-first singles out the -x axis, so only the y reflection
    // leaves its prohibited-turn set invariant.
    const Mesh mesh(5, 5);
    expectEquivariant(mesh, "west-first", meshWorkload(mesh),
                      reflect(mesh, 1), "reflect-y");
}

TEST(Metamorphic, NorthLastUnderXReflection)
{
    // North-last singles out the +y axis; the x reflection is its
    // symmetry.
    const Mesh mesh(5, 5);
    expectEquivariant(mesh, "north-last", meshWorkload(mesh),
                      reflect(mesh, 0), "reflect-x");
}

TEST(Metamorphic, NegativeFirstUnderTransposition)
{
    // Negative-first prohibits positive-to-negative turns in every
    // dimension alike: swapping the axes of a square mesh is its
    // symmetry (reflections are not — they exchange the negative
    // and positive phases). Transposition permutes dimension
    // indices, so the lowest-dimension adaptive tie-break is not
    // equivariant; every route here needs at most one negative and
    // one positive dimension, which negative-first serializes into
    // a forced L-shape, leaving nothing for the tie-break to pick.
    const Mesh mesh(5, 5);
    const std::vector<Event> events = {
        {0, mesh.nodeOf({0, 4}), mesh.nodeOf({3, 1}), 8},
        {3, mesh.nodeOf({4, 2}), mesh.nodeOf({1, 2}), 6},
        {7, mesh.nodeOf({2, 0}), mesh.nodeOf({2, 4}), 8},
        {12, mesh.nodeOf({4, 4}), mesh.nodeOf({0, 4}), 5},
        {18, mesh.nodeOf({1, 3}), mesh.nodeOf({3, 0}), 10},
        {25, mesh.nodeOf({1, 1}), mesh.nodeOf({0, 3}), 6},
        {33, mesh.nodeOf({3, 2}), mesh.nodeOf({0, 3}), 8},
    };
    expectEquivariant(mesh, "negative-first", events,
                      transpose(mesh), "transpose");
}

/** The scripted messages as a fully serialized trace chain: record
 *  i depends on record i-1, so exactly one worm is ever in flight
 *  and FCFS arbitration ties cannot break equivariance. Endpoint
 *  indices are relabeled through @p map (on a mesh every node is an
 *  endpoint, so endpointIndex is the identity on node ids). */
TraceWorkloadPtr
chainTrace(const Topology &topo, const std::vector<Event> &events,
           const NodeMap &map)
{
    std::vector<TraceRecord> records;
    records.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        TraceRecord r;
        r.id = i;
        r.src = topo.endpointIndex(map(events[i].src));
        r.dst = topo.endpointIndex(map(events[i].dst));
        r.size = events[i].length;
        if (i > 0)
            r.deps = {i - 1};
        records.push_back(std::move(r));
    }
    return std::make_shared<const TraceWorkload>(
        "chain", topo.numEndpoints(), std::move(records));
}

void
runReplay(const Topology &topo, const RoutingPtr &routing,
          TraceWorkloadPtr trace, SimEngine engine, unsigned shards,
          RunRecord &record)
{
    SimConfig config;
    config.traceWorkload = std::move(trace);
    config.load = 0.0;
    config.warmupCycles = 0;
    config.measureCycles = 20000;
    config.drainCycles = 0;
    config.trace.counters = true;
    config.engine = engine;
    config.shards = shards;
    Simulator sim(topo, routing, nullptr, config);
    sim.onDelivered = [&](const PacketInfo &info, Cycle now) {
        record.latencies.push_back(now - info.created);
    };
    const SimResult result = sim.run();
    ASSERT_TRUE(result.replayComplete);
    record.drainedAt = result.makespanCycles;
    record.flitsDelivered = sim.flitsDelivered();
    record.packetsDelivered = sim.packetsDelivered();
    record.channelFlits = sim.counters()->channelFlits();
    std::sort(record.latencies.begin(), record.latencies.end());
}

/** Replay the chain trace and its relabeled image on every cycle
 *  engine; assert permuted counters and identical aggregates —
 *  the trace path (causal replay, makespan accounting) must be as
 *  symmetry-blind as the open-loop path. */
void
expectEquivariantReplay(const Topology &topo,
                        const std::string &algorithm,
                        const std::vector<Event> &events,
                        const NodeMap &map, const std::string &label)
{
    SCOPED_TRACE(algorithm + " replay under " + label);
    const NodeMap identity = [](NodeId n) { return n; };
    for (const auto &[engine, shards] : kEngineCases) {
        SCOPED_TRACE(engineCaseName(engine, shards));
        RunRecord base;
        RunRecord image;
        runReplay(topo,
                  makeRouting({.name = algorithm,
                               .dims = topo.numDims()}),
                  chainTrace(topo, events, identity), engine, shards,
                  base);
        runReplay(topo,
                  makeRouting({.name = algorithm,
                               .dims = topo.numDims()}),
                  chainTrace(topo, events, map), engine, shards,
                  image);

        EXPECT_EQ(base.latencies, image.latencies);
        EXPECT_EQ(base.flitsDelivered, image.flitsDelivered);
        EXPECT_EQ(base.packetsDelivered, image.packetsDelivered);
        EXPECT_EQ(base.drainedAt, image.drainedAt);

        const std::vector<ChannelId> perm =
            channelPermutation(topo, map);
        ASSERT_EQ(base.channelFlits.size(),
                  image.channelFlits.size());
        for (ChannelId c = 0; c < topo.numChannels(); ++c) {
            EXPECT_EQ(base.channelFlits[c],
                      image.channelFlits[perm[c]])
                << "channel " << c << " (image " << perm[c]
                << ") under " << label;
        }
    }
}

TEST(Metamorphic, TraceReplayUnderRelabeling)
{
    // Endpoint relabeling by a topology automorphism applied to a
    // trace workload: the dependency chain serializes the replay,
    // so the per-channel counters must permute exactly and the
    // makespan must be bit-identical.
    const Mesh mesh(5, 5);
    const std::vector<Event> events = meshWorkload(mesh);
    expectEquivariantReplay(mesh, "xy", events, rotate180(mesh),
                            "rotate-180");
    expectEquivariantReplay(mesh, "west-first", events,
                            reflect(mesh, 1), "reflect-y");
}

TEST(Metamorphic, PCubeUnderHypercubeRelabeling)
{
    // Permuting the address bits is a hypercube automorphism that
    // preserves each hop's 0-to-1 / 1-to-0 direction, which p-cube's
    // two-phase bit-fixing structure depends on. (XOR-mask
    // automorphisms flip directions and are *not* its symmetry.)
    // Each route below clears at most one bit per phase, so the
    // path is forced and the dimension-order tie-break — which bit
    // permutations do disturb — never gets a say.
    const Hypercube cube(4);
    const std::vector<Event> events = {
        {0, 0b0001, 0b0010, 6}, {4, 0b0100, 0b1000, 5},
        {9, 0b0011, 0b0101, 6}, {15, 0b1000, 0b0001, 4},
        {22, 0b0010, 0b0110, 6}, {30, 0b1001, 0b1010, 5},
    };
    const auto bit = [](NodeId n, int i) { return (n >> i) & 1; };
    const NodeMap swap01 = [&bit](NodeId n) {
        return static_cast<NodeId>((n & 0b1100) | (bit(n, 0) << 1) |
                                   bit(n, 1));
    };
    const NodeMap swap23 = [&bit](NodeId n) {
        return static_cast<NodeId>((n & 0b0011) | (bit(n, 2) << 3) |
                                   (bit(n, 3) << 2));
    };
    const NodeMap rotate = [&bit](NodeId n) {
        return static_cast<NodeId>(((n << 1) & 0b1110) | bit(n, 3));
    };
    expectEquivariant(cube, "p-cube", events, swap01, "swap-bits-01");
    expectEquivariant(cube, "p-cube", events, swap23, "swap-bits-23");
    expectEquivariant(cube, "p-cube", events, rotate, "rotate-bits");
}

} // namespace
} // namespace turnnet
