/**
 * @file
 * Tests for the telemetry subsystem: counters and event traces must
 * observe without perturbing (bit-identical results on or off, at
 * any job count), and the turn histogram must corroborate the turn
 * model — zero prohibited-turn events for every turn-model
 * algorithm across a fuzz sweep of seeds and loads.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "turnnet/harness/figures.hpp"
#include "turnnet/harness/sweep.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/trace/event_trace.hpp"
#include "turnnet/traffic/pattern.hpp"
#include "turnnet/turnmodel/prohibition.hpp"

namespace turnnet {
namespace {

SimConfig
tinyConfig(std::uint64_t seed = 7)
{
    SimConfig base;
    base.warmupCycles = 200;
    base.measureCycles = 1200;
    base.drainCycles = 2500;
    base.seed = seed;
    return base;
}

SimResult
runMesh(const char *alg, const SimConfig &config, double load)
{
    const Mesh mesh(4, 4);
    SimConfig c = config;
    c.load = load;
    Simulator sim(mesh, makeRouting({.name = alg, .dims = 2}),
                  makeTraffic("uniform", mesh), c);
    return sim.run();
}

TEST(Trace, TelemetryIsObservationalOnly)
{
    // The acceptance bar of the subsystem: enabling counters and
    // events changes nothing about the simulated trajectory.
    SimConfig off = tinyConfig();
    SimConfig on = tinyConfig();
    on.trace.counters = true;
    on.trace.events = true;

    std::vector<SweepPoint> a(1), b(1);
    a[0].result = runMesh("west-first", off, 0.15);
    b[0].result = runMesh("west-first", on, 0.15);
    EXPECT_TRUE(figureResultsIdentical({a}, {b}));
}

TEST(Trace, CountersOffMeansNullAccessors)
{
    const Mesh mesh(4, 4);
    Simulator sim(mesh, makeRouting({.name = "xy"}),
                  makeTraffic("uniform", mesh), tinyConfig());
    EXPECT_EQ(sim.counters(), nullptr);
    EXPECT_EQ(sim.trace(), nullptr);
}

TEST(Trace, CountersSeeEveryCycleAndDeliveredTraffic)
{
    const Mesh mesh(4, 4);
    SimConfig config = tinyConfig();
    config.load = 0.2;
    config.trace.counters = true;
    Simulator sim(mesh, makeRouting({.name = "west-first"}),
                  makeTraffic("uniform", mesh), config);
    const SimResult result = sim.run();
    ASSERT_NE(sim.counters(), nullptr);
    const TraceCounters &c = *sim.counters();

    EXPECT_EQ(c.cyclesObserved(), sim.now());
    EXPECT_GT(result.packetsFinished, 0u);

    // Traffic moved, so channels saw flits and buffers held them.
    std::uint64_t crossings = 0;
    for (const std::uint64_t f : c.channelFlits())
        crossings += f;
    EXPECT_GT(crossings, 0u);
    EXPECT_GT(c.meanOccupancy(), 0.0);

    // Occupancy of a single-flit buffer is a fraction of one flit.
    for (ChannelId ch = 0;
         ch < static_cast<ChannelId>(mesh.numChannels()); ++ch) {
        EXPECT_LE(c.avgOccupancy(static_cast<std::size_t>(ch)), 1.0);
        EXPECT_GE(c.channelUtilization(ch), 0.0);
        EXPECT_LE(c.channelUtilization(ch), 1.0);
    }

    // Every delivered packet entered and left through a local port.
    EXPECT_GT(c.injectionTurns(), 0u);
}

TEST(Trace, BlockedBreakdownAccumulatesUnderContention)
{
    // Transpose at high load on a small mesh guarantees contention:
    // some cycles must be charged to the blocked breakdown, and the
    // three mutually exclusive reasons sum to the total.
    const Mesh mesh(4, 4);
    SimConfig config = tinyConfig();
    config.load = 0.4;
    config.trace.counters = true;
    Simulator sim(mesh, makeRouting({.name = "xy"}),
                  makeTraffic("transpose", mesh), config);
    sim.run();
    const BlockedBreakdown total = sim.counters()->blockedTotal();
    EXPECT_GT(total.total(), 0u);
    EXPECT_EQ(total.total(), total.routingDenied + total.outputBusy +
                                 total.downstreamFull);

    BlockedBreakdown summed;
    for (NodeId n = 0; n < static_cast<NodeId>(mesh.numNodes()); ++n)
        summed += sim.counters()->blockedAt(n);
    EXPECT_TRUE(summed == total);
}

struct AlgorithmTurnSet
{
    const char *name;
    TurnSet allowed;
};

TEST(Trace, NoTurnModelAlgorithmLogsAProhibitedTurn)
{
    // The cross-check behind the histogram: fuzz each turn-model
    // algorithm over seeds and loads and demand zero events whose
    // (from, to) pair its own prohibited-turn set forbids.
    const Mesh mesh(5, 5);
    const AlgorithmTurnSet cases[] = {
        {"xy", dimensionOrderTurns(2)},
        {"west-first", westFirstTurns()},
        {"north-last", northLastTurns()},
        {"negative-first", negativeFirstTurns(2)},
    };
    for (const AlgorithmTurnSet &tc : cases) {
        for (const std::uint64_t seed : {1u, 17u, 901u}) {
            for (const double load : {0.1, 0.35}) {
                SimConfig config = tinyConfig(seed);
                config.load = load;
                config.trace.counters = true;
                Simulator sim(mesh,
                              makeRouting({.name = tc.name, .dims = 2}),
                              makeTraffic("uniform", mesh), config);
                sim.run();
                EXPECT_EQ(sim.counters()->prohibitedTurnEvents(
                              tc.allowed),
                          0u)
                    << tc.name << " seed=" << seed
                    << " load=" << load;
            }
        }
    }
}

TEST(Trace, HypercubeAlgorithmsRespectTheirTurnSets)
{
    const Hypercube cube(3);
    const AlgorithmTurnSet cases[] = {
        {"ecube", dimensionOrderTurns(3)},
        {"abonf", abonfTurns(3)},
        {"abopl", aboplTurns(3)},
    };
    for (const AlgorithmTurnSet &tc : cases) {
        SimConfig config = tinyConfig(11);
        config.load = 0.3;
        config.trace.counters = true;
        Simulator sim(cube, makeRouting({.name = tc.name, .dims = 3}),
                      makeTraffic("uniform", cube), config);
        sim.run();
        EXPECT_EQ(sim.counters()->prohibitedTurnEvents(tc.allowed),
                  0u)
            << tc.name;
    }
}

TEST(Trace, UnrestrictedRoutingDoesLogProhibitedTurns)
{
    // Positive control: the cross-check must not be vacuous. Fully
    // adaptive routing takes turns west-first forbids.
    const Mesh mesh(5, 5);
    SimConfig config = tinyConfig(3);
    config.load = 0.35;
    config.trace.counters = true;
    Simulator sim(mesh, makeRouting({.name = "fully-adaptive"}),
                  makeTraffic("transpose", mesh), config);
    sim.run();
    EXPECT_GT(sim.counters()->prohibitedTurnEvents(westFirstTurns()),
              0u);
}

TEST(Trace, SweepCountersAreBitIdenticalSerialVsParallel)
{
    const Mesh mesh(4, 4);
    auto run = [&](unsigned jobs) {
        SweepOptions opts;
        opts.jobs = jobs;
        opts.collectCounters = true;
        opts.replicates = 2;
        return runLoadSweep(mesh,
                            makeRouting({.name = "negative-first"}),
                            makeTraffic("transpose", mesh),
                            {0.05, 0.1, 0.2}, tinyConfig(), opts);
    };
    const auto serial = run(1);
    const auto parallel = run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        ASSERT_NE(serial[i].counters, nullptr);
        ASSERT_NE(parallel[i].counters, nullptr);
        EXPECT_TRUE(
            serial[i].counters->identical(*parallel[i].counters))
            << "point " << i;
    }
    EXPECT_TRUE(figureResultsIdentical({serial}, {parallel}));
}

TEST(Trace, MergePoolsEveryCounter)
{
    const Mesh mesh(4, 4);
    auto counters_for = [&](std::uint64_t seed) {
        SimConfig config = tinyConfig(seed);
        config.load = 0.15;
        config.trace.counters = true;
        Simulator sim(mesh, makeRouting({.name = "west-first"}),
                      makeTraffic("uniform", mesh), config);
        sim.run();
        return sim.countersShared();
    };
    const auto a = counters_for(1);
    const auto b = counters_for(2);
    TraceCounters pooled = *a;
    pooled.merge(*b);
    EXPECT_EQ(pooled.cyclesObserved(),
              a->cyclesObserved() + b->cyclesObserved());
    EXPECT_EQ(pooled.blockedTotal().total(),
              a->blockedTotal().total() + b->blockedTotal().total());
    EXPECT_EQ(pooled.injectionTurns(),
              a->injectionTurns() + b->injectionTurns());
    EXPECT_FALSE(pooled.identical(*a));
}

TEST(Trace, EventRingKeepsTheNewestWindow)
{
    EventTrace trace(4);
    for (Cycle c = 0; c < 10; ++c)
        trace.record(TraceEventType::Advance, c,
                     static_cast<PacketId>(c), 0, 1);
    EXPECT_EQ(trace.capacity(), 4u);
    EXPECT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.recorded(), 10u);
    EXPECT_EQ(trace.dropped(), 6u);
    const auto events = trace.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].cycle, static_cast<Cycle>(6 + i));
}

TEST(Trace, SimulatorEmitsLifecycleEvents)
{
    const Mesh mesh(4, 4);
    SimConfig config = tinyConfig();
    config.load = 0.15;
    config.trace.events = true;
    config.trace.eventCapacity = 1 << 14;
    Simulator sim(mesh, makeRouting({.name = "west-first"}),
                  makeTraffic("uniform", mesh), config);
    sim.run();
    ASSERT_NE(sim.trace(), nullptr);
    EXPECT_GT(sim.trace()->recorded(), 0u);

    bool saw_inject = false, saw_route = false, saw_advance = false,
         saw_deliver = false;
    Cycle last = 0;
    for (const TraceEvent &e : sim.trace()->events()) {
        saw_inject |= e.type == TraceEventType::Inject;
        saw_route |= e.type == TraceEventType::Route;
        saw_advance |= e.type == TraceEventType::Advance;
        saw_deliver |= e.type == TraceEventType::Deliver;
        EXPECT_GE(e.cycle, last); // stamps are monotone
        last = e.cycle;
    }
    EXPECT_TRUE(saw_inject);
    EXPECT_TRUE(saw_route);
    EXPECT_TRUE(saw_advance);
    EXPECT_TRUE(saw_deliver);
}

TEST(Trace, EventTraceIsDeterministic)
{
    auto jsonl = [&]() {
        const Mesh mesh(4, 4);
        SimConfig config = tinyConfig(13);
        config.load = 0.1;
        config.trace.events = true;
        Simulator sim(mesh, makeRouting({.name = "xy"}),
                      makeTraffic("uniform", mesh), config);
        sim.run();
        return sim.trace()->toJsonl();
    };
    EXPECT_EQ(jsonl(), jsonl());
}

} // namespace
} // namespace turnnet
