/**
 * @file
 * Tests for p-cube routing (Section 5), including the paper's
 * worked example in a binary 10-cube.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/analysis/path_enum.hpp"
#include "turnnet/routing/negative_first.hpp"
#include "turnnet/routing/pcube.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

/** The paper's example addresses (written MSB first). */
constexpr std::uint32_t kSrc = 0b1011010100;
constexpr std::uint32_t kDst = 0b0010111001;

TEST(PcubeMask, MinimalPhaseOneThenPhaseTwo)
{
    // Phase one: bits where c = 1 and d = 0.
    EXPECT_EQ(pcubeMinimalMask(kSrc, kDst, 10),
              kSrc & ~kDst & 0x3FF);
    // At the destination of phase one, the mask switches to the
    // 0 -> 1 bits.
    const std::uint32_t after_phase1 = kSrc & kDst;
    EXPECT_EQ(pcubeMinimalMask(after_phase1, kDst, 10),
              ~after_phase1 & kDst & 0x3FF);
}

TEST(PcubeMask, NonminimalExtrasAreOnesInBoth)
{
    EXPECT_EQ(pcubeNonminimalExtraMask(kSrc, kDst, 10),
              kSrc & kDst & 0x3FF);
    // No extras once phase one is finished.
    const std::uint32_t aligned_down = kSrc & kDst;
    EXPECT_EQ(pcubeNonminimalExtraMask(aligned_down, kDst, 10), 0u);
}

TEST(PcubePaths, CountIsH1FactorialTimesH0Factorial)
{
    // The example: h = 6, h1 = 3, h0 = 3 -> 3! * 3! = 36 shortest
    // paths, versus 6! = 720 for fully adaptive.
    EXPECT_EQ(pcubePathCount(kSrc, kDst, 10), 36.0);
    const Hypercube cube(10);
    const PCube pcube;
    EXPECT_EQ(countPaths(cube, pcube, kSrc, kDst), 36.0);
    EXPECT_EQ(pathsFullyAdaptive(cube, kSrc, kDst), 720.0);
}

TEST(PcubePaths, MatchesEnumerationForAllPairsInA5Cube)
{
    const Hypercube cube(5);
    const PCube pcube;
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(countPaths(cube, pcube, s, d),
                      pcubePathCount(s, d, 5))
                << s << " -> " << d;
        }
    }
}

TEST(PcubeTable, ReproducesTheSection5ChoiceCounts)
{
    // The paper's table: from 1011010100 to 0010111001 along
    // dimensions 2, 9, 6, 5, 0, 3 the minimal choice counts are
    // 3, 2, 1, 3, 2, 1 and the nonminimal extras 2, 2, 2, 0, 0, 0.
    const Hypercube cube(10);
    const PCube minimal(true);
    const PCubeFigure12 nonminimal;
    const std::vector<int> dims{2, 9, 6, 5, 0, 3};
    const auto rows = traceChoices(cube, minimal, nonminimal, kSrc,
                                   kDst, dims);
    ASSERT_EQ(rows.size(), 6u);
    const int expected_min[] = {3, 2, 1, 3, 2, 1};
    const int expected_extra[] = {2, 2, 2, 0, 0, 0};
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(rows[i].minimalChoices, expected_min[i]) << i;
        EXPECT_EQ(rows[i].nonminimalExtras, expected_extra[i]) << i;
        EXPECT_EQ(rows[i].dimensionTaken, dims[i]);
    }
    // And the intermediate addresses match the table.
    EXPECT_EQ(cube.addressString(rows[1].node), "1011010000");
    EXPECT_EQ(cube.addressString(rows[3].node), "0010010000");
}

TEST(Pcube, EquivalentToNegativeFirstOnHypercubes)
{
    const Hypercube cube(5);
    const PCube pcube;
    const NegativeFirst nf;
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(
                pcube.route(cube, s, d, Direction::local()).mask(),
                nf.route(cube, s, d, Direction::local()).mask());
        }
    }
}

TEST(Pcube, MinimalRouteMatchesFigure11Mask)
{
    const Hypercube cube(6);
    const PCube pcube;
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            const std::uint32_t mask = pcubeMinimalMask(s, d, 6);
            DirectionSet expected;
            for (int i = 0; i < 6; ++i) {
                if (!((mask >> i) & 1))
                    continue;
                expected.insert(Hypercube::bit(s, i)
                                    ? Direction::negative(i)
                                    : Direction::positive(i));
            }
            EXPECT_EQ(pcube.route(cube, s, d, Direction::local()),
                      expected)
                << s << " -> " << d;
        }
    }
}

TEST(Pcube, NonminimalRouteCoversFigure12Mask)
{
    // Figure 12 phase-one extras (dimensions with c_i = d_i = 1)
    // are a subset of the turn-legal nonminimal relation.
    const Hypercube cube(5);
    const PCube pcube_nm(false);
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            const std::uint32_t extras =
                pcubeNonminimalExtraMask(s, d, 5);
            const DirectionSet offered =
                pcube_nm.route(cube, s, d, Direction::local());
            for (int i = 0; i < 5; ++i) {
                if ((extras >> i) & 1) {
                    EXPECT_TRUE(
                        offered.contains(Direction::negative(i)))
                        << s << " -> " << d << " dim " << i;
                }
            }
        }
    }
}

TEST(Pcube, Figure12IsASubsetOfTheMaximalNonminimalRelation)
{
    const Hypercube cube(5);
    const PCubeFigure12 fig12;
    const PCube maximal(false);
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s == d)
                continue;
            const DirectionSet narrow =
                fig12.route(cube, s, d, Direction::local());
            const DirectionSet wide =
                maximal.route(cube, s, d, Direction::local());
            EXPECT_EQ((narrow - wide).size(), 0)
                << s << " -> " << d;
        }
    }
}

TEST(PcubeChecks, RejectsNonHypercubes)
{
    EXPECT_DEATH(PCube().checkTopology(Mesh(4, 4)), "hypercube");
}

} // namespace
} // namespace turnnet
