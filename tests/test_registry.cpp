/**
 * @file
 * Tests for the algorithm factories: every advertised name
 * resolves, the "-nm" suffix selects nonminimal variants, topology
 * validation propagates, and unknown names die loudly.
 */

#include <gtest/gtest.h>

#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"

namespace turnnet {
namespace {

TEST(Registry, EveryAdvertisedNameResolves)
{
    for (const std::string &name : routingNames()) {
        const RoutingPtr routing = makeRouting(name, 2);
        ASSERT_NE(routing, nullptr) << name;
        EXPECT_FALSE(routing->name().empty()) << name;
    }
}

TEST(Registry, AliasesShareTheAlgorithm)
{
    const Mesh mesh(4, 4);
    const RoutingPtr xy = makeRouting("xy");
    const RoutingPtr dor = makeRouting("dimension-order");
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(
                xy->route(mesh, s, d, Direction::local()).mask(),
                dor->route(mesh, s, d, Direction::local()).mask());
        }
    }
    EXPECT_EQ(xy->name(), "xy");
    EXPECT_EQ(dor->name(), "dimension-order");
    EXPECT_EQ(makeRouting("ecube")->name(), "ecube");
}

TEST(Registry, NmSuffixSelectsNonminimal)
{
    EXPECT_TRUE(makeRouting("west-first")->isMinimal());
    EXPECT_FALSE(makeRouting("west-first-nm")->isMinimal());
    EXPECT_EQ(makeRouting("west-first-nm")->name(),
              "west-first-nm");
    EXPECT_FALSE(makeRouting("negative-first", 2, false)
                     ->isMinimal());
    EXPECT_FALSE(makeRouting("odd-even-nm")->isMinimal());
}

TEST(Registry, TurnSetNamesProduceInducedRouters)
{
    for (const char *name :
         {"turnset:west-first", "turnset:north-last",
          "turnset:negative-first", "turnset:xy"}) {
        const RoutingPtr routing = makeRouting(name, 2);
        EXPECT_EQ(routing->name(), name);
    }
    for (const char *name :
         {"turnset:abonf", "turnset:abopl",
          "turnset:negative-first", "turnset:dimension-order"}) {
        EXPECT_NE(makeRouting(name, 3), nullptr);
    }
}

TEST(RegistryDeath, UnknownNamesAreFatal)
{
    EXPECT_DEATH(makeRouting("no-such-algorithm"),
                 "unknown routing algorithm");
    EXPECT_DEATH(makeRouting("turnset:bogus", 2),
                 "unknown turn set");
}

TEST(Registry, CheckTopologyPropagates)
{
    const Torus torus(4, 2);
    EXPECT_DEATH(makeRouting("west-first")->checkTopology(torus),
                 "mesh");
    EXPECT_DEATH(
        makeRouting("p-cube", 4)->checkTopology(Mesh(4, 4)),
        "hypercube");
    // And the ones that do apply pass silently.
    makeRouting("nf-torus")->checkTopology(torus);
    makeRouting("odd-even")->checkTopology(Mesh(5, 5));
    makeRouting("p-cube", 4)->checkTopology(Hypercube(4));
}

TEST(VcRegistry, NativeAndAdaptedNames)
{
    EXPECT_EQ(makeVcRouting("dateline")->name(), "dateline");
    EXPECT_EQ(makeVcRouting("double-y")->name(), "double-y");
    // Everything else routes through the single-VC adapter,
    // including nonminimal suffix forms.
    const VcRoutingPtr nm = makeVcRouting("north-last-nm");
    EXPECT_EQ(nm->numVcs(), 1);
    EXPECT_EQ(nm->name(), "north-last-nm");
}

} // namespace
} // namespace turnnet
