/**
 * @file
 * Tests for the algorithm factories: every advertised name
 * resolves, the "-nm" suffix selects nonminimal variants, topology
 * validation propagates, and unknown names die loudly.
 */

#include <gtest/gtest.h>

#include <memory>

#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/turnmodel/prohibition.hpp"

namespace turnnet {
namespace {

TEST(Registry, EveryAdvertisedNameResolves)
{
    for (const std::string &name : routingNames()) {
        const RoutingPtr routing = makeRouting({.name = name, .dims = 2});
        ASSERT_NE(routing, nullptr) << name;
        EXPECT_FALSE(routing->name().empty()) << name;
    }
}

TEST(Registry, AliasesShareTheAlgorithm)
{
    const Mesh mesh(4, 4);
    const RoutingPtr xy = makeRouting({.name = "xy"});
    const RoutingPtr dor = makeRouting({.name = "dimension-order"});
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(
                xy->route(mesh, s, d, Direction::local()).mask(),
                dor->route(mesh, s, d, Direction::local()).mask());
        }
    }
    EXPECT_EQ(xy->name(), "xy");
    EXPECT_EQ(dor->name(), "dimension-order");
    EXPECT_EQ(makeRouting({.name = "ecube"})->name(), "ecube");
}

TEST(Registry, NmSuffixSelectsNonminimal)
{
    EXPECT_TRUE(makeRouting({.name = "west-first"})->isMinimal());
    EXPECT_FALSE(makeRouting({.name = "west-first-nm"})->isMinimal());
    EXPECT_EQ(makeRouting({.name = "west-first-nm"})->name(),
              "west-first-nm");
    EXPECT_FALSE(makeRouting({.name = "negative-first", .dims = 2, .minimal = false})
                     ->isMinimal());
    EXPECT_FALSE(makeRouting({.name = "odd-even-nm"})->isMinimal());
}

TEST(Registry, TurnSetNamesProduceInducedRouters)
{
    for (const char *name :
         {"turnset:west-first", "turnset:north-last",
          "turnset:negative-first", "turnset:xy"}) {
        const RoutingPtr routing = makeRouting({.name = name, .dims = 2});
        EXPECT_EQ(routing->name(), name);
    }
    for (const char *name :
         {"turnset:abonf", "turnset:abopl",
          "turnset:negative-first", "turnset:dimension-order"}) {
        EXPECT_NE(makeRouting({.name = name, .dims = 3}), nullptr);
    }
}

TEST(RegistryDeath, UnknownNamesAreFatal)
{
    EXPECT_DEATH(makeRouting({.name = "no-such-algorithm"}),
                 "unknown routing algorithm");
    EXPECT_DEATH(makeRouting({.name = "turnset:bogus", .dims = 2}),
                 "unknown turn set");
}

TEST(Registry, CheckTopologyPropagates)
{
    const Torus torus(4, 2);
    EXPECT_DEATH(makeRouting({.name = "west-first"})->checkTopology(torus),
                 "mesh");
    EXPECT_DEATH(
        makeRouting({.name = "p-cube", .dims = 4})->checkTopology(Mesh(4, 4)),
        "hypercube");
    // And the ones that do apply pass silently.
    makeRouting({.name = "nf-torus"})->checkTopology(torus);
    makeRouting({.name = "odd-even"})->checkTopology(Mesh(5, 5));
    makeRouting({.name = "p-cube", .dims = 4})->checkTopology(Hypercube(4));
}

TEST(Registry, CustomTurnSetRoutesLikeItsNamedTwin)
{
    const Mesh mesh(4, 4);
    const RoutingPtr custom = makeRouting(
        {.name = "turnset:custom",
         .custom_turns = std::make_shared<TurnSet>(
             negativeFirstTurns(2))});
    const RoutingPtr named =
        makeRouting({.name = "turnset:negative-first"});
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(
                custom->route(mesh, s, d, Direction::local()).mask(),
                named->route(mesh, s, d, Direction::local()).mask());
        }
    }
}

TEST(RegistryDeath, UnsafeCustomTurnSetIsRejected)
{
    // One prohibited turn breaks at most one of the two abstract
    // cycles of the plane; Theorem 1 demands one per cycle, so the
    // factory must refuse before the set ever routes a packet.
    auto unsafe = std::make_shared<TurnSet>(2, /*allow_all=*/true);
    unsafe->prohibit(Turn(Direction::positive(0),
                          Direction::positive(1)));
    EXPECT_DEATH(makeRouting({.name = "turnset:custom",
                              .custom_turns = unsafe}),
                 "Theorem 1");

    // A set breaking no cycle at all names the offending plane.
    auto all = std::make_shared<TurnSet>(2, /*allow_all=*/true);
    EXPECT_DEATH(makeRouting({.name = "turnset:custom",
                              .custom_turns = all}),
                 "abstract cycle of plane \\(0,1\\) unbroken");

    // And the entry is unusable without a set.
    EXPECT_DEATH(makeRouting({.name = "turnset:custom"}),
                 "custom_turns");
}

TEST(VcRegistry, NativeAndAdaptedNames)
{
    EXPECT_EQ(makeVcRouting({.name = "dateline"})->name(), "dateline");
    EXPECT_EQ(makeVcRouting({.name = "double-y"})->name(), "double-y");
    // Everything else routes through the single-VC adapter,
    // including nonminimal suffix forms.
    const VcRoutingPtr nm = makeVcRouting({.name = "north-last-nm"});
    EXPECT_EQ(nm->numVcs(), 1);
    EXPECT_EQ(nm->name(), "north-last-nm");
}

} // namespace
} // namespace turnnet
