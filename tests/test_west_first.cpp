/**
 * @file
 * Behavioral tests for west-first routing (Section 3.1): west
 * travel happens first and alone; everything else is adaptive.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/routing/west_first.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"

namespace turnnet {
namespace {

const Direction kWest = Direction::negative(0);
const Direction kEast = Direction::positive(0);
const Direction kSouth = Direction::negative(1);
const Direction kNorth = Direction::positive(1);

class WestFirstTest : public ::testing::Test
{
  protected:
    Mesh mesh_{8, 8};
    WestFirst wf_;
};

TEST_F(WestFirstTest, WestwardDestinationForcesWest)
{
    // Destination strictly west and north: must go west first even
    // though north is also productive.
    const NodeId src = mesh_.nodeOf({5, 2});
    const NodeId dst = mesh_.nodeOf({1, 6});
    const DirectionSet dirs =
        wf_.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 1);
    EXPECT_TRUE(dirs.contains(kWest));
}

TEST_F(WestFirstTest, EastwardDestinationIsFullyAdaptive)
{
    const NodeId src = mesh_.nodeOf({1, 1});
    const NodeId dst = mesh_.nodeOf({4, 5});
    const DirectionSet dirs =
        wf_.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(kEast));
    EXPECT_TRUE(dirs.contains(kNorth));
}

TEST_F(WestFirstTest, StraightWestOnlyPath)
{
    const NodeId src = mesh_.nodeOf({6, 3});
    const NodeId dst = mesh_.nodeOf({2, 3});
    const DirectionSet dirs =
        wf_.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 1);
    EXPECT_TRUE(dirs.contains(kWest));
}

TEST_F(WestFirstTest, AfterWestPhaseRoutesAdaptively)
{
    // Once aligned in x... the remaining directions are south/east/
    // north as needed. Arriving travelling west with the x
    // coordinate aligned:
    const NodeId at = mesh_.nodeOf({2, 2});
    const NodeId dst = mesh_.nodeOf({2, 6});
    const DirectionSet dirs = wf_.route(mesh_, at, dst, kWest);
    EXPECT_EQ(dirs.size(), 1);
    EXPECT_TRUE(dirs.contains(kNorth));
}

TEST_F(WestFirstTest, NeverOffersWestMidRoute)
{
    // No turn into west exists, so west can never be offered to a
    // packet travelling south, east, or north.
    for (const Direction in : {kSouth, kEast, kNorth}) {
        for (NodeId d = 0; d < mesh_.numNodes(); ++d) {
            const NodeId at = mesh_.nodeOf({4, 4});
            if (d == at)
                continue;
            EXPECT_FALSE(
                wf_.route(mesh_, at, d, in).contains(kWest));
        }
    }
}

TEST_F(WestFirstTest, PathCountsMatchSection34)
{
    // S_wf = (dx+dy choose dx) when dx >= 0, else 1.
    const NodeId src = mesh_.nodeOf({3, 3});
    // dx = +2, dy = +2 -> C(4,2) = 6.
    EXPECT_EQ(countPaths(mesh_, wf_, src, mesh_.nodeOf({5, 5})), 6.0);
    EXPECT_EQ(pathsWestFirst(mesh_, src, mesh_.nodeOf({5, 5})), 6.0);
    // dx = -2, dy = +2 -> exactly one path.
    EXPECT_EQ(countPaths(mesh_, wf_, src, mesh_.nodeOf({1, 5})), 1.0);
    EXPECT_EQ(pathsWestFirst(mesh_, src, mesh_.nodeOf({1, 5})), 1.0);
    // dx = +3, dy = -1 -> C(4,1) = 4.
    EXPECT_EQ(countPaths(mesh_, wf_, src, mesh_.nodeOf({6, 2})), 4.0);
}

TEST_F(WestFirstTest, NonminimalOffersLegalDetours)
{
    const WestFirst wf_nm(false);
    // Destination due east: from injection every direction is legal
    // — even an initial westward detour (the west phase comes
    // first, so it is recoverable).
    const NodeId src = mesh_.nodeOf({3, 3});
    const NodeId dst = mesh_.nodeOf({6, 3});
    const DirectionSet dirs =
        wf_nm.route(mesh_, src, dst, Direction::local());
    EXPECT_TRUE(dirs.contains(kEast));
    EXPECT_TRUE(dirs.contains(kNorth));
    EXPECT_TRUE(dirs.contains(kSouth));
    EXPECT_TRUE(dirs.contains(kWest));
    // Once the packet has turned (say north), west is gone for
    // good and reversals are excluded: only south detours remain.
    const DirectionSet mid = wf_nm.route(mesh_, src, dst, kNorth);
    EXPECT_TRUE(mid.contains(kEast));
    EXPECT_FALSE(mid.contains(kWest));
    EXPECT_FALSE(mid.contains(kSouth)); // 180-degree reversal
    EXPECT_TRUE(mid.contains(kNorth));
}

TEST_F(WestFirstTest, NonminimalNeverStrandsWestwardNeeds)
{
    // A detour that would make a westward destination unreachable
    // must not be offered: westward travel cannot restart.
    const WestFirst wf_nm(false);
    const NodeId src = mesh_.nodeOf({3, 3});
    const NodeId dst = mesh_.nodeOf({1, 3}); // west of src
    const DirectionSet dirs =
        wf_nm.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 1);
    EXPECT_TRUE(dirs.contains(kWest));
}

TEST(WestFirstChecks, RejectsWrongTopologies)
{
    const WestFirst wf;
    EXPECT_DEATH(wf.checkTopology(Hypercube(3)), "2D");
    EXPECT_DEATH(wf.checkTopology(Torus(4, 2)), "mesh");
}

TEST(WestFirstChecks, NamesReflectMode)
{
    EXPECT_EQ(WestFirst().name(), "west-first");
    EXPECT_EQ(WestFirst(false).name(), "west-first-nm");
    EXPECT_TRUE(WestFirst().isMinimal());
    EXPECT_FALSE(WestFirst(false).isMinimal());
}

} // namespace
} // namespace turnnet
