/**
 * @file
 * The workload subsystem under test: the trace-workload JSONL parser
 * (which must reject every malformed document with a descriptive
 * error and never crash — probed with targeted corruptions and a
 * mutation fuzzer), the deterministic kernel-trace synthesizers, the
 * bursty arrival model, the per-algorithm adversarial registry, and
 * the --workload grammar that ties them all to one CLI surface.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "turnnet/common/rng.hpp"
#include "turnnet/harness/sweep.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/topology_registry.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/traffic/generator.hpp"
#include "turnnet/traffic/pattern.hpp"
#include "turnnet/workload/adversarial.hpp"
#include "turnnet/workload/trace.hpp"
#include "turnnet/workload/tracegen.hpp"
#include "turnnet/workload/workload.hpp"

namespace turnnet {
namespace {

/** A small hand-built valid trace document. */
std::string
validDoc()
{
    return std::string("{\"schema\": \"") + kTraceWorkloadSchema +
           "\", \"name\": \"tiny\", \"endpoints\": 4, "
           "\"records\": 3}\n"
           "{\"id\": 0, \"src\": 0, \"dst\": 1, \"size\": 8, "
           "\"deps\": []}\n"
           "{\"id\": 1, \"src\": 1, \"dst\": 2, \"size\": 4, "
           "\"deps\": [0]}\n"
           "{\"id\": 2, \"src\": 2, \"dst\": 0, \"size\": 2, "
           "\"deps\": [0, 1]}\n";
}

/** Expect parse() to fail with @p fragment in the error. */
void
expectRejected(const std::string &doc, const std::string &fragment)
{
    const TraceWorkload::ParseOutcome out = TraceWorkload::parse(doc);
    EXPECT_FALSE(out.ok) << "accepted: " << doc;
    EXPECT_EQ(out.trace, nullptr);
    EXPECT_NE(out.error.find(fragment), std::string::npos)
        << "error '" << out.error << "' lacks '" << fragment << "'";
}

TEST(TraceParse, ValidDocumentRoundTrips)
{
    const TraceWorkload::ParseOutcome out =
        TraceWorkload::parse(validDoc());
    ASSERT_TRUE(out.ok) << out.error;
    ASSERT_NE(out.trace, nullptr);
    EXPECT_EQ(out.trace->name(), "tiny");
    EXPECT_EQ(out.trace->endpoints(), 4);
    ASSERT_EQ(out.trace->records().size(), 3u);
    EXPECT_EQ(out.trace->totalFlits(), 14u);
    EXPECT_EQ(out.trace->indexOfId(2), 2u);
    ASSERT_EQ(out.trace->records()[2].deps.size(), 2u);

    // Serialization is byte-stable: parse(toJsonl) reproduces the
    // exact bytes, which is what lets golden fixtures pin traces.
    const std::string rendered = out.trace->toJsonl();
    const TraceWorkload::ParseOutcome again =
        TraceWorkload::parse(rendered);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.trace->toJsonl(), rendered);
}

TEST(TraceParse, SynthesizedTraceRoundTrips)
{
    const TraceWorkloadPtr trace =
        makeStencilTrace({.nx = 4, .ny = 4, .iterations = 2});
    const TraceWorkload::ParseOutcome out =
        TraceWorkload::parse(trace->toJsonl());
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.trace->name(), trace->name());
    EXPECT_EQ(out.trace->endpoints(), trace->endpoints());
    ASSERT_EQ(out.trace->records().size(), trace->records().size());
    for (std::size_t i = 0; i < trace->records().size(); ++i) {
        EXPECT_EQ(out.trace->records()[i].id,
                  trace->records()[i].id);
        EXPECT_EQ(out.trace->records()[i].deps,
                  trace->records()[i].deps);
    }
}

TEST(TraceParse, StructuralCorruptionsAreDescriptiveErrors)
{
    // Bad JSON on a record line names the line.
    expectRejected("{\"schema\": \"turnnet.trace_workload/1\", "
                   "\"endpoints\": 4, \"records\": 1}\n"
                   "{\"id\": 0, \"src\": ,}\n",
                   "line 2");
    // The header must come first.
    expectRejected("{\"id\": 0, \"src\": 0, \"dst\": 1, "
                   "\"size\": 8, \"deps\": []}\n",
                   "first line must be a header");
    // Wrong schema tag.
    expectRejected("{\"schema\": \"turnnet.trace_workload/9\", "
                   "\"endpoints\": 4, \"records\": 0}\n",
                   "header");
    // Unknown and missing fields.
    expectRejected("{\"schema\": \"turnnet.trace_workload/1\", "
                   "\"endpoints\": 4, \"records\": 1}\n"
                   "{\"id\": 0, \"src\": 0, \"dst\": 1, "
                   "\"size\": 8, \"deps\": [], \"color\": 3}\n",
                   "unknown field \"color\"");
    expectRejected("{\"schema\": \"turnnet.trace_workload/1\", "
                   "\"endpoints\": 4, \"records\": 1}\n"
                   "{\"id\": 0, \"src\": 0, \"dst\": 1, "
                   "\"deps\": []}\n",
                   "missing field \"size\"");
    // Non-array deps, non-integer dep entries.
    expectRejected("{\"schema\": \"turnnet.trace_workload/1\", "
                   "\"endpoints\": 4, \"records\": 1}\n"
                   "{\"id\": 0, \"src\": 0, \"dst\": 1, "
                   "\"size\": 8, \"deps\": 0}\n",
                   "\"deps\" must be an array");
    expectRejected("{\"schema\": \"turnnet.trace_workload/1\", "
                   "\"endpoints\": 4, \"records\": 1}\n"
                   "{\"id\": 0, \"src\": 0, \"dst\": 1, "
                   "\"size\": 8, \"deps\": [0.5]}\n",
                   "integer record ids");
    // Header/record count mismatch, both directions.
    expectRejected("{\"schema\": \"turnnet.trace_workload/1\", "
                   "\"endpoints\": 4, \"records\": 2}\n"
                   "{\"id\": 0, \"src\": 0, \"dst\": 1, "
                   "\"size\": 8, \"deps\": []}\n",
                   "header declares 2 records");
    // Empty document.
    expectRejected("", "empty trace");
    expectRejected("\n   \n\t\n", "empty trace");
}

TEST(TraceParse, SemanticCorruptionsAreDescriptiveErrors)
{
    const auto doc = [](const std::string &records_part,
                        int count) {
        return "{\"schema\": \"turnnet.trace_workload/1\", "
               "\"endpoints\": 4, \"records\": " +
               std::to_string(count) + "}\n" + records_part;
    };
    // Zero-size message.
    expectRejected(doc("{\"id\": 0, \"src\": 0, \"dst\": 1, "
                       "\"size\": 0, \"deps\": []}\n",
                       1),
                   "zero-size");
    // A message to itself.
    expectRejected(doc("{\"id\": 0, \"src\": 2, \"dst\": 2, "
                       "\"size\": 8, \"deps\": []}\n",
                       1),
                   "must leave its source");
    // src/dst beyond the declared endpoint count.
    expectRejected(doc("{\"id\": 0, \"src\": 4, \"dst\": 1, "
                       "\"size\": 8, \"deps\": []}\n",
                       1),
                   "not an endpoint index");
    expectRejected(doc("{\"id\": 0, \"src\": 0, \"dst\": 9, "
                       "\"size\": 8, \"deps\": []}\n",
                       1),
                   "not an endpoint index");
    // Dangling, duplicate, and self predecessors.
    expectRejected(doc("{\"id\": 0, \"src\": 0, \"dst\": 1, "
                       "\"size\": 8, \"deps\": [7]}\n",
                       1),
                   "dangling predecessor id 7");
    expectRejected(doc("{\"id\": 0, \"src\": 0, \"dst\": 1, "
                       "\"size\": 8, \"deps\": []}\n"
                       "{\"id\": 1, \"src\": 1, \"dst\": 2, "
                       "\"size\": 8, \"deps\": [0, 0]}\n",
                       2),
                   "duplicate predecessor id 0");
    expectRejected(doc("{\"id\": 0, \"src\": 0, \"dst\": 1, "
                       "\"size\": 8, \"deps\": [0]}\n",
                       1),
                   "depends on itself");
    // Duplicate record ids.
    expectRejected(doc("{\"id\": 3, \"src\": 0, \"dst\": 1, "
                       "\"size\": 8, \"deps\": []}\n"
                       "{\"id\": 3, \"src\": 1, \"dst\": 2, "
                       "\"size\": 8, \"deps\": []}\n",
                       2),
                   "duplicate record id 3");
    // A dependency cycle no record of which can ever inject.
    expectRejected(doc("{\"id\": 0, \"src\": 0, \"dst\": 1, "
                       "\"size\": 8, \"deps\": [1]}\n"
                       "{\"id\": 1, \"src\": 1, \"dst\": 2, "
                       "\"size\": 8, \"deps\": [0]}\n",
                       2),
                   "cyclic dependency");
    // Too few endpoints to ever carry a message.
    expectRejected("{\"schema\": \"turnnet.trace_workload/1\", "
                   "\"endpoints\": 1, \"records\": 1}\n"
                   "{\"id\": 0, \"src\": 0, \"dst\": 0, "
                   "\"size\": 8, \"deps\": []}\n",
                   "between 2 and");
}

TEST(TraceParse, MissingFileIsAnOutcomeNotACrash)
{
    const TraceWorkload::ParseOutcome out =
        TraceWorkload::parseFile("/nonexistent/void.jsonl");
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.error.find("cannot read"), std::string::npos);
}

TEST(TraceParse, MutationFuzzNeverCrashes)
{
    // Deterministic mutation fuzzing over the valid document: byte
    // flips, truncations, line drops/duplications, and random-junk
    // splices. Every outcome must be either a valid trace or a
    // non-empty error — never a crash, hang, or empty-error reject.
    const std::string base = validDoc();
    std::mt19937 rng(0xC0FFEE);
    for (int trial = 0; trial < 500; ++trial) {
        std::string doc = base;
        const int mode = static_cast<int>(rng() % 5);
        if (mode == 0) {
            // Flip a handful of bytes.
            for (int i = 0; i < 4; ++i)
                doc[rng() % doc.size()] =
                    static_cast<char>(rng() % 256);
        } else if (mode == 1) {
            doc = doc.substr(0, rng() % doc.size());
        } else if (mode == 2) {
            // Drop one line.
            std::vector<std::string> lines;
            std::istringstream in(doc);
            std::string line;
            while (std::getline(in, line))
                lines.push_back(line);
            lines.erase(lines.begin() +
                        static_cast<long>(rng() % lines.size()));
            doc.clear();
            for (const std::string &l : lines)
                doc += l + "\n";
        } else if (mode == 3) {
            // Duplicate one line (header or record).
            std::istringstream in(doc);
            std::string line;
            std::vector<std::string> lines;
            while (std::getline(in, line))
                lines.push_back(line);
            doc += lines[rng() % lines.size()] + "\n";
        } else {
            // Splice random junk somewhere.
            std::string junk;
            for (int i = 0; i < 16; ++i)
                junk += static_cast<char>(rng() % 96 + 32);
            doc.insert(rng() % doc.size(), junk);
        }
        const TraceWorkload::ParseOutcome out =
            TraceWorkload::parse(doc);
        if (!out.ok) {
            EXPECT_FALSE(out.error.empty())
                << "silent rejection of: " << doc;
        } else {
            ASSERT_NE(out.trace, nullptr);
            EXPECT_TRUE(TraceWorkload::checkRecords(
                            out.trace->endpoints(),
                            out.trace->records())
                            .empty());
        }
    }
}

TEST(TraceParseDeath, FatalSurfacesDieWithTheParseError)
{
    const std::string path =
        testing::TempDir() + "/corrupt.trace.jsonl";
    {
        std::ofstream out(path, std::ios::binary);
        out << "{\"schema\": \"turnnet.trace_workload/1\", "
               "\"endpoints\": 4, \"records\": 1}\n"
               "{\"id\": 0, \"src\": 0, \"dst\": 1, \"size\": 0, "
               "\"deps\": []}\n";
    }
    EXPECT_DEATH(loadTraceWorkload(path), "zero-size");
    EXPECT_DEATH(loadTraceWorkload("/nonexistent/void.jsonl"),
                 "cannot read");
    // In-memory construction with an invalid DAG is a library bug.
    EXPECT_DEATH(
        TraceWorkload("bad", 4,
                      {TraceRecord{0, 1, 1, 8, {}}}),
        "must leave its source");
}

TEST(TraceGen, StencilShapeAndDependencies)
{
    // 4x4 open grid: interior ranks have 4 neighbors, edges 3,
    // corners 2 — 48 halo messages per iteration.
    const TraceWorkloadPtr trace = makeStencilTrace(
        {.nx = 4, .ny = 4, .iterations = 2, .messageFlits = 8});
    EXPECT_EQ(trace->endpoints(), 16);
    ASSERT_EQ(trace->records().size(), 96u);
    EXPECT_EQ(trace->totalFlits(), 96u * 8u);
    EXPECT_EQ(trace->name(), "stencil(4x4,iters=2)");

    // Iteration 1 (first 48 records) starts unconditionally;
    // iteration 2 waits for exactly the halos its sender received.
    std::vector<std::vector<std::uint64_t>> received(16);
    for (std::size_t i = 0; i < 48; ++i) {
        EXPECT_TRUE(trace->records()[i].deps.empty());
        received[trace->records()[i].dst].push_back(
            trace->records()[i].id);
    }
    for (std::size_t i = 48; i < 96; ++i) {
        const TraceRecord &rec = trace->records()[i];
        EXPECT_EQ(rec.deps, received[rec.src])
            << "record " << rec.id;
    }
}

TEST(TraceGen, PeriodicRingStencil)
{
    // The golden-fixture shape: an 8-rank periodic ring exchanged
    // for 4 iterations — 2 neighbors per rank, 16 messages per
    // iteration, 64 records total.
    const TraceWorkloadPtr trace =
        makeStencilTrace({.nx = 8,
                          .ny = 1,
                          .periodic = true,
                          .iterations = 4,
                          .messageFlits = 6});
    EXPECT_EQ(trace->endpoints(), 8);
    EXPECT_EQ(trace->records().size(), 64u);
    // Every rank of a periodic ring sends both ways each iteration.
    for (const TraceRecord &rec : trace->records()) {
        const NodeId left = (rec.src + 7) % 8;
        const NodeId right = (rec.src + 1) % 8;
        EXPECT_TRUE(rec.dst == left || rec.dst == right)
            << "record " << rec.id;
    }
}

TEST(TraceGen, AllReduceTreeShape)
{
    const TraceWorkloadPtr trace =
        makeAllReduceTrace({.endpoints = 16, .arity = 2});
    EXPECT_EQ(trace->endpoints(), 16);
    // Up and down sweeps each carry one message per non-root rank.
    ASSERT_EQ(trace->records().size(), 30u);
    std::set<NodeId> reduced;
    std::set<NodeId> broadcast;
    for (std::size_t i = 0; i < 15; ++i) {
        const TraceRecord &rec = trace->records()[i];
        EXPECT_EQ(rec.dst, (rec.src - 1) / 2);
        reduced.insert(rec.src);
        // Leaves start unconditionally; interior ranks wait for
        // every child's contribution.
        const bool leaf = 2 * rec.src + 1 >= 16;
        EXPECT_EQ(rec.deps.empty(), leaf) << "rank " << rec.src;
    }
    for (std::size_t i = 15; i < 30; ++i) {
        const TraceRecord &rec = trace->records()[i];
        EXPECT_EQ(rec.src, (rec.dst - 1) / 2);
        broadcast.insert(rec.dst);
        EXPECT_FALSE(rec.deps.empty());
    }
    EXPECT_EQ(reduced.size(), 15u);
    EXPECT_EQ(broadcast.size(), 15u);
}

TEST(TraceGen, FftButterflyShape)
{
    const TraceWorkloadPtr trace = makeFftTrace({.endpoints = 16});
    EXPECT_EQ(trace->endpoints(), 16);
    ASSERT_EQ(trace->records().size(), 64u); // 4 stages x 16 ranks
    for (int s = 0; s < 4; ++s) {
        for (NodeId r = 0; r < 16; ++r) {
            const TraceRecord &rec =
                trace->records()[static_cast<std::size_t>(s) * 16 +
                                 r];
            EXPECT_EQ(rec.src, r);
            EXPECT_EQ(rec.dst, r ^ (1 << s));
            if (s == 0) {
                EXPECT_TRUE(rec.deps.empty());
            } else {
                // Waits for the message received from the previous
                // stage's partner.
                ASSERT_EQ(rec.deps.size(), 1u);
                EXPECT_EQ(rec.deps[0],
                          static_cast<std::uint64_t>(s - 1) * 16 +
                              (r ^ (1 << (s - 1))));
            }
        }
    }
}

TEST(TraceGen, SynthesisIsDeterministic)
{
    EXPECT_EQ(makeStencilTrace({.nx = 3, .ny = 5, .iterations = 3})
                  ->toJsonl(),
              makeStencilTrace({.nx = 3, .ny = 5, .iterations = 3})
                  ->toJsonl());
    EXPECT_EQ(
        makeAllReduceTrace({.endpoints = 27, .arity = 3})->toJsonl(),
        makeAllReduceTrace({.endpoints = 27, .arity = 3})->toJsonl());
    EXPECT_EQ(makeFftTrace({.endpoints = 32})->toJsonl(),
              makeFftTrace({.endpoints = 32})->toJsonl());
}

TEST(TraceGenDeath, InvalidSpecsAreFatal)
{
    EXPECT_DEATH(makeStencilTrace({.nx = 1, .ny = 1}),
                 "at least two");
    EXPECT_DEATH(makeStencilTrace({.nx = 4, .ny = 4,
                                   .iterations = 0}),
                 "iteration");
    EXPECT_DEATH(makeAllReduceTrace({.endpoints = 1}), ">= 2 ranks");
    EXPECT_DEATH(makeAllReduceTrace({.endpoints = 8, .arity = 1}),
                 "arity");
    EXPECT_DEATH(makeFftTrace({.endpoints = 12}), "power-of-two");
    EXPECT_DEATH(makeFftTrace({.endpoints = 1}), "power-of-two");
}

TEST(Burst, ValidationCatchesBadParameters)
{
    EXPECT_TRUE(BurstModel{}.validate().empty());
    EXPECT_TRUE((BurstModel{.onFraction = 1.0,
                            .meanOnCycles = 1.0})
                    .validate()
                    .empty());
    EXPECT_FALSE(BurstModel{.onFraction = 0.0}.validate().empty());
    EXPECT_FALSE(BurstModel{.onFraction = 1.5}.validate().empty());
    EXPECT_FALSE(BurstModel{.onFraction = -0.2}.validate().empty());
    EXPECT_FALSE(
        BurstModel{.meanOnCycles = 0.0}.validate().empty());
    EXPECT_FALSE(
        BurstModel{.meanOnCycles = -64.0}.validate().empty());
}

TEST(Burst, OffDwellBalancesTheOnFraction)
{
    const BurstModel burst{.onFraction = 0.25,
                           .meanOnCycles = 300.0};
    EXPECT_DOUBLE_EQ(burst.meanOffCycles(), 900.0);
    const BurstModel always{.onFraction = 1.0,
                            .meanOnCycles = 64.0};
    EXPECT_DOUBLE_EQ(always.meanOffCycles(), 0.0);
}

TEST(Burst, LongRunOfferedLoadMatchesPlainPoisson)
{
    // The MMPP source moves variance, not the mean: over a long
    // horizon the bursty generator must offer the same load as the
    // plain Poisson source (here +/- 10%, far beyond the statistical
    // wobble of ~800 expected bursts).
    const Mesh mesh(4, 4);
    const TrafficPtr uniform = makeTraffic("uniform", mesh);
    const double load = 0.2;
    const MessageLengthMix mix = MessageLengthMix::fixed(4);
    const Cycle horizon = 100000;

    const auto countFlits = [&](std::optional<BurstModel> burst) {
        MessageGenerator gen(mesh, uniform, load, mix, 99, burst);
        std::uint64_t flits = 0;
        for (Cycle c = 0; c < horizon; ++c) {
            gen.generate(c, [&](NodeId, NodeId, int length) {
                flits += static_cast<std::uint64_t>(length);
            });
        }
        return flits;
    };

    const double expected =
        load * 16.0 * static_cast<double>(horizon);
    const auto plain = static_cast<double>(countFlits(std::nullopt));
    const auto bursty = static_cast<double>(countFlits(
        BurstModel{.onFraction = 0.25, .meanOnCycles = 256.0}));
    // (Skipped self-destined slots shave a sliver below expected.)
    EXPECT_NEAR(plain, expected, 0.10 * expected);
    EXPECT_NEAR(bursty, expected, 0.10 * expected);
    EXPECT_NEAR(bursty, plain, 0.10 * plain);
}

TEST(Burst, TraceWorkloadExcludesLoadAndBurst)
{
    // SimConfig::validate ties the knot: replay paces injection by
    // the DAG, so a load or a burst model alongside a trace is a
    // configuration error, caught at the API surface.
    SimConfig config;
    config.traceWorkload = makeFftTrace({.endpoints = 4});
    config.load = 0.2;
    EXPECT_FALSE(config.validate().empty());
    config.load = 0.0;
    EXPECT_TRUE(config.validate().empty());
    config.burst = BurstModel{};
    EXPECT_FALSE(config.validate().empty());
    config.traceWorkload = nullptr;
    config.load = 0.2;
    EXPECT_TRUE(config.validate().empty());
    config.burst = BurstModel{.onFraction = 2.0};
    EXPECT_FALSE(config.validate().empty());
}

TEST(Adversarial, RegistryEntriesAreComplete)
{
    const std::vector<AdversarialWorkload> &all =
        adversarialWorkloads();
    ASSERT_GE(all.size(), 5u);
    std::set<std::string> algorithms;
    for (const AdversarialWorkload &entry : all) {
        EXPECT_NE(entry.algorithm, nullptr);
        EXPECT_STRNE(entry.pattern, "");
        EXPECT_STRNE(entry.family, "");
        EXPECT_GT(std::string(entry.rationale).size(), 20u)
            << entry.algorithm
            << ": the rationale must explain the mechanism";
        EXPECT_NE(entry.make, nullptr);
        EXPECT_TRUE(algorithms.insert(entry.algorithm).second)
            << "duplicate adversary for " << entry.algorithm;
        EXPECT_TRUE(hasAdversarialWorkload(entry.algorithm));
    }
    EXPECT_FALSE(hasAdversarialWorkload("fully-adaptive"));
    EXPECT_FALSE(hasAdversarialWorkload(""));
}

TEST(Adversarial, MeshAdversariesArePermutations)
{
    const Mesh mesh(8, 8);
    Rng rng(1);
    for (const char *alg :
         {"xy", "west-first", "north-last", "negative-first"}) {
        const TrafficPtr traffic =
            makeAdversarialTraffic(alg, mesh);
        ASSERT_NE(traffic, nullptr);
        EXPECT_TRUE(traffic->isPermutation());
        std::set<NodeId> image;
        for (NodeId n = 0; n < mesh.numNodes(); ++n)
            image.insert(traffic->dest(n, rng));
        EXPECT_EQ(image.size(),
                  static_cast<std::size_t>(mesh.numNodes()))
            << alg << " adversary is not a bijection";
    }
    // The registered mesh patterns carry their documented names.
    EXPECT_EQ(makeAdversarialTraffic("xy", mesh)->name(),
              "transpose");
    EXPECT_EQ(makeAdversarialTraffic("west-first", mesh)->name(),
              "west-shift");
    EXPECT_EQ(makeAdversarialTraffic("north-last", mesh)->name(),
              "north-shift");
    EXPECT_EQ(
        makeAdversarialTraffic("negative-first", mesh)->name(),
        "sign-mix");
}

TEST(Adversarial, TorusAndDragonflyFamilies)
{
    const Torus torus(std::vector<int>{8, 8});
    EXPECT_EQ(makeAdversarialTraffic("nf-torus", torus)->name(),
              "tornado");

    const std::unique_ptr<Topology> df =
        TopologyRegistry::instance().build("dragonfly(4,2,2)");
    const TrafficPtr next_group =
        makeAdversarialTraffic("dragonfly-min", *df);
    EXPECT_EQ(next_group->name(), "next-group");
    Rng rng(1);
    std::set<NodeId> image;
    for (const NodeId n : df->endpoints())
        image.insert(next_group->dest(n, rng));
    EXPECT_EQ(image.size(), df->endpoints().size());
}

TEST(AdversarialDeath, UnknownAlgorithmAndFamilyMismatch)
{
    const Mesh mesh(4, 4);
    EXPECT_DEATH(makeAdversarialTraffic("fully-adaptive", mesh),
                 "no adversarial workload registered");
    // The error lists what IS registered.
    EXPECT_DEATH(makeAdversarialTraffic("bogus", mesh),
                 "west-first");
    EXPECT_DEATH(
        makeAdversarialTraffic("west-first", Hypercube(4)), "2D");
    EXPECT_DEATH(makeAdversarialTraffic("dragonfly-min", mesh),
                 "dragonfly");
}

TEST(WorkloadGrammar, PatternNamesAreTheRegistry)
{
    const std::vector<std::string> &names = trafficPatternNames();
    EXPECT_GE(names.size(), 9u);
    for (const std::string &name : names)
        EXPECT_TRUE(isKnownTrafficPattern(name)) << name;
    EXPECT_TRUE(isKnownTrafficPattern("uniform"));
    EXPECT_FALSE(isKnownTrafficPattern("no-such-pattern"));
    EXPECT_FALSE(isKnownTrafficPattern(""));
}

TEST(WorkloadGrammar, AllFourKindsParse)
{
    WorkloadSpec spec;
    EXPECT_TRUE(WorkloadSpec::parse("transpose", spec).empty());
    EXPECT_EQ(spec.kind, WorkloadSpec::Kind::Pattern);
    EXPECT_EQ(spec.pattern, "transpose");

    EXPECT_TRUE(
        WorkloadSpec::parse("trace:runs/fft.jsonl", spec).empty());
    EXPECT_EQ(spec.kind, WorkloadSpec::Kind::Trace);
    EXPECT_EQ(spec.tracePath, "runs/fft.jsonl");

    EXPECT_TRUE(
        WorkloadSpec::parse("bursty:uniform,on=0.5,dwell=128", spec)
            .empty());
    EXPECT_EQ(spec.kind, WorkloadSpec::Kind::Bursty);
    EXPECT_EQ(spec.pattern, "uniform");
    EXPECT_DOUBLE_EQ(spec.burst.onFraction, 0.5);
    EXPECT_DOUBLE_EQ(spec.burst.meanOnCycles, 128.0);
    // Parameters are optional; defaults hold.
    EXPECT_TRUE(WorkloadSpec::parse("bursty:tornado", spec).empty());
    EXPECT_DOUBLE_EQ(spec.burst.onFraction,
                     BurstModel{}.onFraction);

    EXPECT_TRUE(WorkloadSpec::parse("adversarial", spec).empty());
    EXPECT_EQ(spec.kind, WorkloadSpec::Kind::Adversarial);
    EXPECT_TRUE(spec.pattern.empty());
    EXPECT_TRUE(
        WorkloadSpec::parse("adversarial:west-first", spec).empty());
    EXPECT_EQ(spec.pattern, "west-first");
}

TEST(WorkloadGrammar, CanonicalRoundTrips)
{
    for (const char *text :
         {"uniform", "transpose", "trace:runs/fft.jsonl",
          "bursty:uniform,on=0.5,dwell=128", "adversarial",
          "adversarial:xy"}) {
        WorkloadSpec spec;
        ASSERT_TRUE(WorkloadSpec::parse(text, spec).empty())
            << text;
        const std::string canon = spec.canonical();
        WorkloadSpec again;
        ASSERT_TRUE(WorkloadSpec::parse(canon, again).empty())
            << canon;
        EXPECT_EQ(again.canonical(), canon) << text;
        EXPECT_EQ(again.kind, spec.kind);
    }
}

TEST(WorkloadGrammar, EveryMalformedSpecIsACollectedError)
{
    for (const char *text :
         {"", "trace:", "bursty:", "bursty:nope",
          "bursty:uniform,on=zero", "bursty:uniform,frob=1",
          "bursty:uniform,on", "bursty:uniform,on=0",
          "bursty:uniform,dwell=-3", "adversarial:", "bogus:x",
          "no-such-pattern"}) {
        WorkloadSpec spec;
        const std::vector<std::string> errors =
            WorkloadSpec::parse(text, spec);
        EXPECT_FALSE(errors.empty()) << "accepted: '" << text << "'";
        for (const std::string &e : errors)
            EXPECT_FALSE(e.empty());
    }
    // Multiple problems are all reported, not just the first.
    WorkloadSpec spec;
    EXPECT_GE(
        WorkloadSpec::parse("bursty:nope,on=0,frob=1", spec).size(),
        3u);
}

TEST(WorkloadGrammarDeath, ParseOrDieListsTheProblems)
{
    EXPECT_DEATH(WorkloadSpec::parseOrDie("bogus:x"),
                 "invalid --workload");
}

TEST(WorkloadBind, PatternAndBurstyBindToTraffic)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    const TrafficPtr plain = bindWorkload(
        WorkloadSpec::parseOrDie("transpose"), mesh, "xy", config);
    ASSERT_NE(plain, nullptr);
    EXPECT_EQ(plain->name(), "transpose");
    EXPECT_FALSE(config.burst.has_value());

    const TrafficPtr bursty = bindWorkload(
        WorkloadSpec::parseOrDie("bursty:uniform,on=0.5,dwell=64"),
        mesh, "xy", config);
    ASSERT_NE(bursty, nullptr);
    ASSERT_TRUE(config.burst.has_value());
    EXPECT_DOUBLE_EQ(config.burst->onFraction, 0.5);
    EXPECT_DOUBLE_EQ(config.burst->meanOnCycles, 64.0);
}

TEST(WorkloadBind, TraceBindsTheFileAndSilencesTheGenerator)
{
    const std::string path =
        testing::TempDir() + "/bind.trace.jsonl";
    ASSERT_TRUE(
        makeStencilTrace({.nx = 4, .ny = 4})->writeJsonl(path));

    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.3;
    config.burst = BurstModel{};
    const TrafficPtr traffic =
        bindWorkload(WorkloadSpec::parseOrDie("trace:" + path),
                     mesh, "xy", config);
    EXPECT_EQ(traffic, nullptr); // replay draws no destinations
    ASSERT_NE(config.traceWorkload, nullptr);
    EXPECT_EQ(config.traceWorkload->records().size(), 48u);
    EXPECT_DOUBLE_EQ(config.load, 0.0);
    EXPECT_FALSE(config.burst.has_value());
    EXPECT_TRUE(config.validate().empty());
}

TEST(WorkloadBind, AdversarialDefaultsToTheRunAlgorithm)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    const TrafficPtr own =
        bindWorkload(WorkloadSpec::parseOrDie("adversarial"), mesh,
                     "west-first", config);
    EXPECT_EQ(own->name(), "west-shift");
    const TrafficPtr named = bindWorkload(
        WorkloadSpec::parseOrDie("adversarial:negative-first"),
        mesh, "west-first", config);
    EXPECT_EQ(named->name(), "sign-mix");
}

TEST(WorkloadBind, ResolveWorkloadFallsBackWhenEmpty)
{
    const Mesh mesh(4, 4);
    const TrafficPtr fallback = makeTraffic("transpose", mesh);
    SweepOptions opts;
    SimConfig config;
    config.load = 0.25;
    EXPECT_EQ(resolveWorkload(opts, mesh, "xy", fallback, config),
              fallback);
    EXPECT_DOUBLE_EQ(config.load, 0.25); // untouched
    EXPECT_EQ(config.traceWorkload, nullptr);
}

TEST(WorkloadBind, ResolveWorkloadBindsPerAlgorithm)
{
    const Mesh mesh(4, 4);
    const TrafficPtr fallback = makeTraffic("uniform", mesh);
    SweepOptions opts;
    opts.workload = "adversarial";
    SimConfig config;
    const TrafficPtr wf =
        resolveWorkload(opts, mesh, "west-first", fallback, config);
    const TrafficPtr nf = resolveWorkload(opts, mesh,
                                          "negative-first", fallback,
                                          config);
    EXPECT_EQ(wf->name(), "west-shift");
    EXPECT_EQ(nf->name(), "sign-mix");

    opts.workload = "bursty:uniform,on=0.5,dwell=32";
    SimConfig bursty_config;
    const TrafficPtr bursty = resolveWorkload(
        opts, mesh, "xy", fallback, bursty_config);
    ASSERT_NE(bursty, nullptr);
    ASSERT_TRUE(bursty_config.burst.has_value());
    EXPECT_DOUBLE_EQ(bursty_config.burst->onFraction, 0.5);
}

} // namespace
} // namespace turnnet
