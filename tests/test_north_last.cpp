/**
 * @file
 * Behavioral tests for north-last routing (Section 3.2): north is
 * taken only when it is the last direction needed.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/routing/north_last.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

const Direction kWest = Direction::negative(0);
const Direction kEast = Direction::positive(0);
const Direction kSouth = Direction::negative(1);
const Direction kNorth = Direction::positive(1);

class NorthLastTest : public ::testing::Test
{
  protected:
    Mesh mesh_{8, 8};
    NorthLast nl_;
};

TEST_F(NorthLastTest, NorthDeferredWhileOtherWorkRemains)
{
    // Destination northeast: go east first; north would prohibit
    // the later turn.
    const NodeId src = mesh_.nodeOf({2, 2});
    const NodeId dst = mesh_.nodeOf({5, 6});
    const DirectionSet dirs =
        nl_.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 1);
    EXPECT_TRUE(dirs.contains(kEast));
}

TEST_F(NorthLastTest, NorthTakenWhenItIsTheOnlyNeed)
{
    const NodeId src = mesh_.nodeOf({3, 1});
    const NodeId dst = mesh_.nodeOf({3, 6});
    const DirectionSet dirs =
        nl_.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 1);
    EXPECT_TRUE(dirs.contains(kNorth));
}

TEST_F(NorthLastTest, SouthwardDestinationsAreFullyAdaptive)
{
    // Destination southwest: west and south both offered.
    const NodeId src = mesh_.nodeOf({5, 5});
    const NodeId dst = mesh_.nodeOf({2, 2});
    const DirectionSet dirs =
        nl_.route(mesh_, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(kWest));
    EXPECT_TRUE(dirs.contains(kSouth));
}

TEST_F(NorthLastTest, OnceNorthAlwaysNorth)
{
    // A packet travelling north can only continue north.
    const NodeId at = mesh_.nodeOf({4, 4});
    for (NodeId d = 0; d < mesh_.numNodes(); ++d) {
        if (d == at)
            continue;
        const DirectionSet dirs = nl_.route(mesh_, at, d, kNorth);
        dirs.forEach(
            [&](Direction o) { EXPECT_EQ(o, kNorth); });
    }
}

TEST_F(NorthLastTest, PathCountsMatchSection34)
{
    const NodeId src = mesh_.nodeOf({4, 4});
    // dy = -2, dx = +2: fully adaptive -> C(4,2) = 6.
    EXPECT_EQ(countPaths(mesh_, nl_, src, mesh_.nodeOf({6, 2})), 6.0);
    EXPECT_EQ(pathsNorthLast(mesh_, src, mesh_.nodeOf({6, 2})), 6.0);
    // dy = +2 with dx != 0: exactly one path.
    EXPECT_EQ(countPaths(mesh_, nl_, src, mesh_.nodeOf({6, 6})), 1.0);
    EXPECT_EQ(pathsNorthLast(mesh_, src, mesh_.nodeOf({6, 6})), 1.0);
}

TEST_F(NorthLastTest, IsTheRotationImageOfWestFirst)
{
    // Rotating the mesh 90 degrees maps north-last onto west-first
    // (Theorem 3's proof device). Check via path counts: the number
    // of permitted paths from (x,y) to (u,v) under north-last equals
    // west-first's count from (y, mx-1-x)... spot-check a concrete
    // symmetric pair instead of the general transform:
    const NodeId a = mesh_.nodeOf({1, 1});
    const NodeId b = mesh_.nodeOf({4, 3});
    // north-last a->b (needs east+north: 1 path) corresponds to
    // west-first needing west+north (also 1 path).
    EXPECT_EQ(countPaths(mesh_, nl_, a, b), 1.0);
}

TEST(NorthLastChecks, RejectsWrongTopologies)
{
    EXPECT_DEATH(NorthLast().checkTopology(Hypercube(4)), "2D");
}

TEST(NorthLastChecks, NamesReflectMode)
{
    EXPECT_EQ(NorthLast().name(), "north-last");
    EXPECT_EQ(NorthLast(false).name(), "north-last-nm");
}

} // namespace
} // namespace turnnet
