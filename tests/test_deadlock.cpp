/**
 * @file
 * Deadlock in vivo: the deliberately unrestricted fully adaptive
 * baseline wedges the simulated network (the Figure 1 scenario),
 * the watchdog detects it, and every turn-model algorithm survives
 * the identical workload.
 */

#include <gtest/gtest.h>

#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

SimConfig
stressConfig()
{
    // Calibration (see DESIGN.md): under this workload the worst
    // legitimate per-buffer stall of any turn-model algorithm is
    // about 3000 cycles, while the deadlock-prone baseline stalls
    // forever. The 8000-cycle watchdog separates them cleanly.
    SimConfig config;
    config.load = 0.5;
    config.lengths = MessageLengthMix::fixed(200);
    config.watchdogCycles = 8000;
    config.warmupCycles = 100;
    config.measureCycles = 40000;
    config.drainCycles = 100;
    config.seed = 42;
    return config;
}

TEST(Deadlock, FullyAdaptiveWedgesUnderStress)
{
    // Minimal fully adaptive routing without virtual channels has a
    // cyclic channel dependency graph; under heavy load with long
    // worms the cycle fills and nothing moves again.
    const Mesh mesh(4, 4);
    bool any_deadlock = false;
    for (std::uint64_t seed = 1; seed <= 6 && !any_deadlock;
         ++seed) {
        SimConfig config = stressConfig();
        config.seed = seed;
        Simulator sim(mesh, makeRouting({.name = "fully-adaptive"}),
                      makeTraffic("uniform", mesh), config);
        const SimResult result = sim.run();
        any_deadlock = result.deadlocked;
    }
    EXPECT_TRUE(any_deadlock)
        << "expected the cyclic-CDG baseline to wedge";
}

TEST(Deadlock, TurnModelAlgorithmsSurviveTheSameStress)
{
    const Mesh mesh(4, 4);
    for (const char *alg :
         {"xy", "west-first", "north-last", "negative-first"}) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            SimConfig config = stressConfig();
            config.seed = seed;
            Simulator sim(mesh, makeRouting({.name = alg, .dims = 2}),
                          makeTraffic("uniform", mesh), config);
            const SimResult result = sim.run();
            EXPECT_FALSE(result.deadlocked)
                << alg << " seed " << seed;
        }
    }
}

TEST(Deadlock, HypercubeEcubeAndPcubeSurvive)
{
    const Hypercube cube(4);
    for (const char *alg : {"ecube", "p-cube", "abonf", "abopl"}) {
        SimConfig config = stressConfig();
        config.load = 0.6;
        Simulator sim(cube, makeRouting({.name = alg, .dims = 4}),
                      makeTraffic("uniform", cube), config);
        const SimResult result = sim.run();
        EXPECT_FALSE(result.deadlocked) << alg;
    }
}

TEST(Deadlock, SaturatedIsNotDeadlocked)
{
    // Past saturation the turn-model algorithms keep delivering:
    // queues grow (not sustainable) but flits always move.
    const Mesh mesh(4, 4);
    SimConfig config = stressConfig();
    config.load = 0.9;
    Simulator sim(mesh, makeRouting({.name = "xy"}),
                  makeTraffic("uniform", mesh), config);
    const SimResult result = sim.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_FALSE(result.sustainable);
    EXPECT_GT(result.acceptedFlitsPerUsec, 0.0);
}

TEST(Deadlock, WatchdogReportsPromptly)
{
    // Once wedged, the run ends within the watchdog window instead
    // of spinning to the schedule's end.
    const Mesh mesh(4, 4);
    SimConfig config = stressConfig();
    config.watchdogCycles = 800;
    config.measureCycles = 200000; // would be a long wait otherwise
    bool deadlocked = false;
    Cycle ended = 0;
    for (std::uint64_t seed = 1; seed <= 3 && !deadlocked; ++seed) {
        config.seed = seed;
        Simulator sim(mesh, makeRouting({.name = "fully-adaptive"}),
                      makeTraffic("uniform", mesh), config);
        const SimResult result = sim.run();
        deadlocked = result.deadlocked;
        ended = result.cycles;
    }
    ASSERT_TRUE(deadlocked);
    EXPECT_LT(ended, 100000u);
}

TEST(Deadlock, ScriptedRingOfWormsWedgesFullyAdaptive)
{
    // A deterministic Figure 1: four long worms chase each other
    // around the central square, each needing the channel the next
    // one holds. Minimal fully adaptive routing has exactly one
    // productive direction for each after the first hop, forming
    // the circular wait.
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.0;
    config.watchdogCycles = 300;
    Simulator sim(mesh, makeRouting({.name = "fully-adaptive"}), nullptr,
                  config);
    // Corners of the ring: (1,1) (2,1) (2,2) (1,2).
    // Each packet starts one corner back and ends one corner ahead,
    // so its only minimal path goes along two sides of the square.
    const int len = 50;
    sim.injectMessage(mesh.nodeOf({1, 1}), mesh.nodeOf({2, 2}), len);
    sim.injectMessage(mesh.nodeOf({2, 1}), mesh.nodeOf({1, 2}), len);
    sim.injectMessage(mesh.nodeOf({2, 2}), mesh.nodeOf({1, 1}), len);
    sim.injectMessage(mesh.nodeOf({1, 2}), mesh.nodeOf({2, 1}), len);
    const bool drained = sim.runUntilIdle(20000);
    // With lowest-dim output selection each worm first travels in x
    // then blocks on y (or vice versa)... the four can wedge or
    // escape depending on arbitration; accept either a detected
    // deadlock or a full drain, but never a silent stall.
    EXPECT_TRUE(drained || sim.deadlockDetected());
}

} // namespace
} // namespace turnnet
