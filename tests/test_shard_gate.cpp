/**
 * @file
 * Regression tests for the shard-scaling gate encoding
 * (appendShardGateEntries in harness/bench_report): the
 * bench/shard_scaling gate reuses evaluateSpeedupGate by mapping
 * each topology to one value of the gate's load axis, the 1-shard
 * run to the "reference" rate, and the --gate-shards run to the
 * sole candidate. These tests pin that encoding — in particular
 * that EVERY topology point is gated, that non-gated shard counts
 * cannot carry the verdict, and that a missing baseline or gated
 * run makes the gate fail rather than silently pass.
 */

#include <gtest/gtest.h>

#include "turnnet/harness/bench_report.hpp"

namespace turnnet {
namespace {

ShardBenchEntry
entry(const char *topology, unsigned shards, double rate)
{
    ShardBenchEntry e;
    e.topology = topology;
    e.shards = shards;
    e.cyclesPerSec = rate;
    return e;
}

TEST(ShardGate, EveryTopologyPointIsGated)
{
    // The cube scales (3.1x) but the big mesh collapsed to 1.4x —
    // the gate must take the minimum over topology points, exactly
    // like the engine gate takes it over load points.
    const std::vector<ShardBenchEntry> entries = {
        entry("mesh(64x64)", 1, 100.0),
        entry("mesh(64x64)", 4, 320.0),
        entry("mesh(256x256)", 1, 10.0),
        entry("mesh(256x256)", 4, 14.0),
        entry("torus(16x16x16)", 1, 50.0),
        entry("torus(16x16x16)", 4, 155.0),
    };
    std::vector<EngineBenchEntry> gate_entries;
    const std::vector<std::string> order =
        appendShardGateEntries(gate_entries, entries, 4);

    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "mesh(64x64)");
    EXPECT_EQ(order[1], "mesh(256x256)");
    EXPECT_EQ(order[2], "torus(16x16x16)");

    const SpeedupGateResult gate =
        evaluateSpeedupGate(gate_entries, 2.5);
    EXPECT_FALSE(gate.pass);
    EXPECT_EQ(gate.loadsEvaluated, 3u);
    EXPECT_DOUBLE_EQ(gate.minSpeedup, 1.4);
    EXPECT_EQ(gate.minEngine, "sharded@4");
    // minLoad is the failing topology's axis index — the bench maps
    // it back through the returned order to name the fabric.
    const auto axis = static_cast<std::size_t>(gate.minLoad + 0.5);
    ASSERT_LT(axis, order.size());
    EXPECT_EQ(order[axis], "mesh(256x256)");
}

TEST(ShardGate, OnlyTheGatedShardCountIsACandidate)
{
    // A spectacular 2-shard run must not excuse a collapsed 4-shard
    // run: the gate asks about the configured team width, nothing
    // else.
    const std::vector<ShardBenchEntry> entries = {
        entry("mesh(64x64)", 1, 100.0),
        entry("mesh(64x64)", 2, 900.0),
        entry("mesh(64x64)", 4, 120.0),
        entry("mesh(64x64)", 8, 800.0),
    };
    std::vector<EngineBenchEntry> gate_entries;
    appendShardGateEntries(gate_entries, entries, 4);

    // Exactly two gate entries: the 1-shard baseline and the
    // 4-shard candidate. The 2- and 8-shard runs are absent.
    ASSERT_EQ(gate_entries.size(), 2u);

    const SpeedupGateResult gate =
        evaluateSpeedupGate(gate_entries, 2.5);
    EXPECT_FALSE(gate.pass);
    EXPECT_DOUBLE_EQ(gate.minSpeedup, 1.2);
}

TEST(ShardGate, PassingSweepReportsTheMinimum)
{
    const std::vector<ShardBenchEntry> entries = {
        entry("mesh(64x64)", 1, 100.0),
        entry("mesh(64x64)", 4, 340.0),
        entry("torus(16x16x16)", 1, 50.0),
        entry("torus(16x16x16)", 4, 130.0),
    };
    std::vector<EngineBenchEntry> gate_entries;
    const std::vector<std::string> order =
        appendShardGateEntries(gate_entries, entries, 4);
    const SpeedupGateResult gate =
        evaluateSpeedupGate(gate_entries, 2.5);
    EXPECT_TRUE(gate.pass);
    EXPECT_EQ(gate.loadsEvaluated, 2u);
    EXPECT_DOUBLE_EQ(gate.minSpeedup, 2.6);
    const auto axis = static_cast<std::size_t>(gate.minLoad + 0.5);
    ASSERT_LT(axis, order.size());
    EXPECT_EQ(order[axis], "torus(16x16x16)");
}

TEST(ShardGate, MissingBaselineIsNotEvaluable)
{
    // A topology without its 1-shard run proves nothing; if no
    // topology is evaluable, an enabled gate must fail (the
    // engine gate's empty-sweep rule).
    const std::vector<ShardBenchEntry> entries = {
        entry("mesh(64x64)", 4, 320.0),
    };
    std::vector<EngineBenchEntry> gate_entries;
    appendShardGateEntries(gate_entries, entries, 4);
    const SpeedupGateResult gate =
        evaluateSpeedupGate(gate_entries, 2.5);
    EXPECT_FALSE(gate.pass);
    EXPECT_EQ(gate.loadsEvaluated, 0u);
}

TEST(ShardGate, MissingGatedRunIsNotEvaluable)
{
    const std::vector<ShardBenchEntry> entries = {
        entry("mesh(64x64)", 1, 100.0),
        entry("mesh(64x64)", 2, 190.0),
    };
    std::vector<EngineBenchEntry> gate_entries;
    appendShardGateEntries(gate_entries, entries, 4);
    const SpeedupGateResult gate =
        evaluateSpeedupGate(gate_entries, 2.5);
    EXPECT_FALSE(gate.pass);
    EXPECT_EQ(gate.loadsEvaluated, 0u);
}

TEST(ShardGate, GateShardsOfOneYieldsNoCandidates)
{
    // Gating the baseline against itself would always "pass" at
    // 1.0x; the encoding refuses to produce a candidate instead.
    const std::vector<ShardBenchEntry> entries = {
        entry("mesh(64x64)", 1, 100.0),
        entry("mesh(64x64)", 4, 320.0),
    };
    std::vector<EngineBenchEntry> gate_entries;
    appendShardGateEntries(gate_entries, entries, 1);
    ASSERT_EQ(gate_entries.size(), 1u);
    EXPECT_EQ(gate_entries[0].engine, "reference");
    EXPECT_FALSE(evaluateSpeedupGate(gate_entries, 2.5).pass);
}

TEST(ShardGate, OracleVerdictRidesIntoTheGateEntries)
{
    std::vector<ShardBenchEntry> entries = {
        entry("mesh(64x64)", 1, 100.0),
        entry("mesh(64x64)", 4, 320.0),
    };
    entries[1].oracleIdentical = false;
    entries[1].oracleChecked = true;
    std::vector<EngineBenchEntry> gate_entries;
    appendShardGateEntries(gate_entries, entries, 4);
    ASSERT_EQ(gate_entries.size(), 2u);
    EXPECT_TRUE(gate_entries[0].oracleIdentical);
    EXPECT_FALSE(gate_entries[1].oracleIdentical);
}

} // namespace
} // namespace turnnet
