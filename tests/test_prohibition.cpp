/**
 * @file
 * The Section 3 claim, verified computationally: of the 16 ways to
 * prohibit one turn from each abstract cycle of a 2D mesh, exactly
 * 12 prevent deadlock (Figure 4 shows a failing one), and the 12
 * fall into 3 classes under the symmetry of the mesh — west-first,
 * north-last, and negative-first.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "turnnet/analysis/cdg.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/turnmodel/prohibition.hpp"
#include "turnnet/turnmodel/turn_routing.hpp"

namespace turnnet {
namespace {

const Direction kWest = Direction::negative(0);
const Direction kEast = Direction::positive(0);
const Direction kSouth = Direction::negative(1);
const Direction kNorth = Direction::positive(1);

TEST(TwoTurnChoices, ThereAreSixteen)
{
    EXPECT_EQ(enumerateTwoTurnChoices().size(), 16u);
}

TEST(TwoTurnChoices, EachBreaksBothAbstractCycles)
{
    for (const TwoTurnChoice &choice : enumerateTwoTurnChoices()) {
        EXPECT_TRUE(breaksAllCycles(choice.turns))
            << choice.toString();
        EXPECT_EQ(choice.turns.prohibited90().size(), 2u);
    }
}

TEST(TwoTurnChoices, ExactlyTwelveAreDeadlockFree)
{
    // Breaking both abstract cycles is necessary but not sufficient
    // (Figure 4): the channel dependency graph decides.
    const Mesh mesh(5, 5);
    int deadlock_free = 0;
    for (const TwoTurnChoice &choice : enumerateTwoTurnChoices()) {
        const TurnSetRouting routing(choice.toString(), choice.turns,
                                     true);
        deadlock_free += isDeadlockFree(mesh, routing);
    }
    EXPECT_EQ(deadlock_free, 12);
}

TEST(TwoTurnChoices, Figure4ChoiceDeadlocks)
{
    // Figure 4 prohibits east->north (from the counterclockwise
    // cycle) and west->north... the paper's illustration prohibits
    // one left turn and one right turn whose remaining turns still
    // compose both cycles. The classic failing pair keeps three
    // left turns equivalent to the prohibited right turn: prohibit
    // north->east (cw) and east->north (ccw).
    TurnSet turns(2, true);
    turns.prohibit(Turn(kNorth, kEast));
    turns.prohibit(Turn(kEast, kNorth));
    EXPECT_TRUE(breaksAllCycles(turns));

    const Mesh mesh(5, 5);
    const TurnSetRouting routing("figure4", turns, true);
    const CdgReport report = analyzeDependencies(mesh, routing);
    EXPECT_FALSE(report.acyclic);
    EXPECT_FALSE(report.cycle.empty());
}

TEST(TwoTurnChoices, DeadlockFreedomAgreesAcrossMeshSizes)
{
    // The verdict for each choice must not depend on the mesh size.
    const Mesh small(4, 4);
    const Mesh rect(6, 3);
    for (const TwoTurnChoice &choice : enumerateTwoTurnChoices()) {
        const TurnSetRouting routing(choice.toString(), choice.turns,
                                     true);
        EXPECT_EQ(isDeadlockFree(small, routing),
                  isDeadlockFree(rect, routing))
            << choice.toString();
    }
}

TEST(TwoTurnChoices, TwelveGoodChoicesFormThreeSymmetryClasses)
{
    const Mesh mesh(5, 5);
    std::set<std::string> good_classes;
    std::set<std::string> bad_classes;
    for (const TwoTurnChoice &choice : enumerateTwoTurnChoices()) {
        const TurnSetRouting routing(choice.toString(), choice.turns,
                                     true);
        if (isDeadlockFree(mesh, routing))
            good_classes.insert(symmetryClass(choice));
        else
            bad_classes.insert(symmetryClass(choice));
    }
    EXPECT_EQ(good_classes.size(), 3u);
    EXPECT_EQ(bad_classes.size(), 1u);
}

TEST(TwoTurnChoices, NamedAlgorithmsAreAmongTheTwelve)
{
    // Find the choices that equal the west-first, north-last, and
    // negative-first turn sets; all must be deadlock free and in
    // distinct symmetry classes.
    const Mesh mesh(5, 5);
    std::map<std::string, std::string> class_of;
    for (const TwoTurnChoice &choice : enumerateTwoTurnChoices()) {
        const TurnSetRouting routing(choice.toString(), choice.turns,
                                     true);
        const bool free = isDeadlockFree(mesh, routing);
        if (choice.turns == westFirstTurns()) {
            EXPECT_TRUE(free);
            class_of["wf"] = symmetryClass(choice);
        }
        if (choice.turns == northLastTurns()) {
            EXPECT_TRUE(free);
            class_of["nl"] = symmetryClass(choice);
        }
        if (choice.turns == negativeFirstTurns(2)) {
            EXPECT_TRUE(free);
            class_of["nf"] = symmetryClass(choice);
        }
    }
    ASSERT_EQ(class_of.size(), 3u);
    EXPECT_NE(class_of["wf"], class_of["nl"]);
    EXPECT_NE(class_of["wf"], class_of["nf"]);
    EXPECT_NE(class_of["nl"], class_of["nf"]);
}

TEST(SymmetryClass, InvariantUnderExplicitReflection)
{
    // The mirror image of west-first (prohibit the two turns to the
    // east) must land in west-first's class.
    TwoTurnChoice wf;
    wf.fromClockwise = Turn(kSouth, kWest);
    wf.fromCounterclockwise = Turn(kNorth, kWest);
    TwoTurnChoice ef;
    ef.fromClockwise = Turn(kNorth, kEast);
    ef.fromCounterclockwise = Turn(kSouth, kEast);
    EXPECT_EQ(symmetryClass(wf), symmetryClass(ef));

    // North-last's mirror about the x axis is "south-last".
    TwoTurnChoice nl;
    nl.fromClockwise = Turn(kNorth, kEast);
    nl.fromCounterclockwise = Turn(kNorth, kWest);
    TwoTurnChoice sl;
    sl.fromClockwise = Turn(kSouth, kWest);
    sl.fromCounterclockwise = Turn(kSouth, kEast);
    EXPECT_EQ(symmetryClass(nl), symmetryClass(sl));

    EXPECT_NE(symmetryClass(wf), symmetryClass(nl));
}

} // namespace
} // namespace turnnet
