/**
 * @file
 * Tests for the destination-reachability oracle: exactness of the
 * backward search, cache correctness across topologies, and the
 * boundary dead-end cases that motivated it.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/reachability.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/turnmodel/prohibition.hpp"

namespace turnnet {
namespace {

/** Hop legality: west-first turn rules, minimal scope. */
bool
wfMinimalLegal(const Topology &topo, NodeId node, Direction in_dir,
               Direction out_dir, NodeId dest)
{
    if (!in_dir.isLocal() &&
        !westFirstTurns().allows(in_dir, out_dir)) {
        return false;
    }
    if (!topo.minimalDirections(node, dest).contains(out_dir))
        return false;
    return topo.neighbor(node, out_dir) != kInvalidNode;
}

TEST(Reachability, DestinationAlwaysReachesItself)
{
    const Mesh mesh(4, 4);
    ReachabilityOracle oracle(&wfMinimalLegal);
    for (NodeId d = 0; d < mesh.numNodes(); ++d) {
        EXPECT_TRUE(
            oracle.canReach(mesh, d, Direction::local(), d));
        EXPECT_TRUE(
            oracle.canReach(mesh, d, Direction::positive(0), d));
    }
}

TEST(Reachability, InjectionReachesEverywhere)
{
    const Mesh mesh(5, 5);
    ReachabilityOracle oracle(&wfMinimalLegal);
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            EXPECT_TRUE(
                oracle.canReach(mesh, s, Direction::local(), d))
                << s << " -> " << d;
        }
    }
}

TEST(Reachability, TurnRulesCutOffWestwardDestinations)
{
    // Under west-first rules, a packet travelling east (or north,
    // or south) can never reach a destination strictly west of it.
    const Mesh mesh(5, 5);
    ReachabilityOracle oracle(&wfMinimalLegal);
    const NodeId at = mesh.nodeOf({3, 2});
    const NodeId west_dest = mesh.nodeOf({1, 2});
    EXPECT_FALSE(oracle.canReach(mesh, at, Direction::positive(0),
                                 west_dest));
    EXPECT_FALSE(oracle.canReach(mesh, at, Direction::positive(1),
                                 west_dest));
    EXPECT_TRUE(oracle.canReach(mesh, at, Direction::negative(0),
                                west_dest));
}

TEST(Reachability, MinimalScopeCutsUnproductiveStates)
{
    // With minimal scope, a state that requires moving away first
    // is unreachable even if the turns would allow it.
    const Mesh mesh(4, 4);
    ReachabilityOracle oracle(&wfMinimalLegal);
    // At the destination's own column travelling north, a
    // destination to the south is lost (no 180, minimal only).
    const NodeId at = mesh.nodeOf({2, 3});
    const NodeId south_dest = mesh.nodeOf({2, 1});
    EXPECT_FALSE(oracle.canReach(mesh, at, Direction::positive(1),
                                 south_dest));
}

TEST(Reachability, NoReversalDeadEndAtBoundary)
{
    // The case that motivated exact reachability for nonminimal
    // routing: west-first legal relation without reversals. A
    // packet travelling north in the last column with a south-only
    // destination cannot finish (east detours do not exist at the
    // boundary), even though a componentwise check would claim
    // otherwise.
    auto legal = [](const Topology &topo, NodeId node,
                    Direction in_dir, Direction out_dir,
                    NodeId dest) {
        (void)dest; // nonminimal: no productivity constraint
        if (!in_dir.isLocal()) {
            if (out_dir == in_dir.reversed())
                return false;
            if (!westFirstTurns().allows(in_dir, out_dir))
                return false;
        }
        return topo.neighbor(node, out_dir) != kInvalidNode;
    };
    const Mesh mesh(4, 4);
    ReachabilityOracle oracle(legal);
    const NodeId at = mesh.nodeOf({3, 2});
    const NodeId south_dest = mesh.nodeOf({3, 1});
    EXPECT_FALSE(oracle.canReach(mesh, at, Direction::positive(1),
                                 south_dest));
    // A destination that still needs an eastward leg is fine one
    // column inboard: the packet turns east, then south.
    const NodeId inboard = mesh.nodeOf({2, 2});
    EXPECT_TRUE(oracle.canReach(mesh, inboard,
                                Direction::positive(1),
                                south_dest));
    // But a due-south destination is lost to any north-travelling
    // packet under west-first rules: no west turn ever brings it
    // back to its own column.
    EXPECT_FALSE(oracle.canReach(mesh, inboard,
                                 Direction::positive(1),
                                 mesh.nodeOf({2, 1})));
}

TEST(Reachability, CacheKeysOnStructureNotAddress)
{
    ReachabilityOracle oracle(&wfMinimalLegal);
    for (int pass = 0; pass < 2; ++pass) {
        for (int size : {4, 6, 5}) {
            const Mesh mesh(size, size);
            const NodeId corner =
                mesh.nodeOf({size - 1, size - 1});
            EXPECT_TRUE(oracle.canReach(mesh, 0, Direction::local(),
                                        corner))
                << mesh.name();
        }
    }
    oracle.clear();
    const Mesh mesh(4, 4);
    EXPECT_TRUE(
        oracle.canReach(mesh, 0, Direction::local(), 15));
}

} // namespace
} // namespace turnnet
