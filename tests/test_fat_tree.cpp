/**
 * @file
 * k-ary n-tree fat-tree tests: terminal/switch id layout, ancestor
 * and NCA arithmetic, up/down port wiring, endpoint classification
 * (the library's first indirect network), and minimal distances
 * through the nearest common ancestor.
 */

#include <gtest/gtest.h>

#include "turnnet/topology/fat_tree.hpp"

namespace turnnet {
namespace {

TEST(FatTree, LayoutAndEndpoints)
{
    const FatTree ft(2, 3);
    EXPECT_EQ(ft.numTerminals(), 8); // k^n
    EXPECT_EQ(ft.switchesPerLevel(), 4);
    EXPECT_EQ(ft.numNodes(), 20); // 8 + 3*4
    EXPECT_EQ(ft.numPorts(), 4);  // k down + k up
    EXPECT_EQ(ft.name(), "fat-tree(2,3)");

    // Terminals are the endpoints; switches are pure routers.
    EXPECT_EQ(ft.numEndpoints(), 8);
    for (NodeId n = 0; n < ft.numNodes(); ++n) {
        EXPECT_EQ(ft.isEndpoint(n), n < 8);
        if (n < 8) {
            EXPECT_EQ(ft.endpointIndex(n), n);
        } else {
            EXPECT_EQ(ft.endpointIndex(n), kInvalidNode);
        }
    }
    // Switch id round trip.
    for (int l = 0; l < 3; ++l) {
        for (int w = 0; w < 4; ++w) {
            const NodeId s = ft.switchId(l, w);
            EXPECT_FALSE(ft.isTerminal(s));
            EXPECT_EQ(ft.switchLevel(s), l);
            EXPECT_EQ(ft.switchPos(s), w);
        }
    }
}

TEST(FatTree, TerminalWiring)
{
    const FatTree ft(2, 3);
    for (NodeId t = 0; t < ft.numTerminals(); ++t) {
        // A terminal wires only its single up port, to leaf switch
        // (0, t/k); the switch reaches back down through digit t%k.
        const NodeId leaf = ft.switchId(0, static_cast<int>(t) / 2);
        EXPECT_EQ(ft.neighbor(t, ft.upDir(0)), leaf);
        EXPECT_EQ(ft.neighbor(t, ft.downDir(0)), kInvalidNode);
        EXPECT_EQ(ft.neighbor(t, ft.downDir(1)), kInvalidNode);
        EXPECT_EQ(
            ft.neighbor(leaf, ft.downDir(static_cast<int>(t) % 2)),
            t);
    }
}

TEST(FatTree, AncestryAndNca)
{
    const FatTree ft(2, 3);
    // The leaf switch of terminal 0 covers terminals 0-1; the rank-1
    // switch above covers 0-3; rank 2 covers everything.
    EXPECT_TRUE(ft.isAncestor(0, 0, 0));
    EXPECT_TRUE(ft.isAncestor(0, 0, 1));
    EXPECT_FALSE(ft.isAncestor(0, 0, 2));
    EXPECT_TRUE(ft.isAncestor(1, 0, 3));
    EXPECT_FALSE(ft.isAncestor(1, 0, 4));
    EXPECT_TRUE(ft.isAncestor(2, 0, 7));

    EXPECT_EQ(ft.ncaLevel(0, 1), 0);
    EXPECT_EQ(ft.ncaLevel(0, 2), 1);
    EXPECT_EQ(ft.ncaLevel(0, 3), 1);
    EXPECT_EQ(ft.ncaLevel(0, 4), 2);
    EXPECT_EQ(ft.ncaLevel(3, 7), 2);
    EXPECT_EQ(ft.ncaLevel(6, 7), 0);
}

TEST(FatTree, UpDownSymmetryBetweenSwitchRanks)
{
    const FatTree ft(2, 3);
    // Every wired up channel has the matching down channel back.
    for (int l = 0; l + 1 < 3; ++l) {
        for (int w = 0; w < 4; ++w) {
            const NodeId lower = ft.switchId(l, w);
            for (int c = 0; c < 2; ++c) {
                const NodeId upper = ft.neighbor(lower, ft.upDir(c));
                ASSERT_NE(upper, kInvalidNode);
                EXPECT_EQ(ft.switchLevel(upper), l + 1);
                bool back = false;
                for (int d = 0; d < 2; ++d)
                    back = back ||
                           ft.neighbor(upper, ft.downDir(d)) ==
                               lower;
                EXPECT_TRUE(back);
            }
        }
    }
    // The top rank has no up channels.
    for (int w = 0; w < 4; ++w) {
        const NodeId top = ft.switchId(2, w);
        EXPECT_EQ(ft.neighbor(top, ft.upDir(0)), kInvalidNode);
        EXPECT_EQ(ft.neighbor(top, ft.upDir(1)), kInvalidNode);
    }
}

TEST(FatTree, TerminalDistancesGoThroughTheNca)
{
    const FatTree ft(2, 3);
    for (NodeId a = 0; a < ft.numTerminals(); ++a) {
        for (NodeId b = 0; b < ft.numTerminals(); ++b) {
            if (a == b) {
                EXPECT_EQ(ft.distance(a, b), 0);
                continue;
            }
            // Up to the NCA rank and back down; the terminal links
            // are the rank-0 hops of that climb.
            EXPECT_EQ(ft.distance(a, b),
                      2 * (ft.ncaLevel(a, b) + 1));
            // Progress property of minimalDirections.
            const int d = ft.distance(a, b);
            ft.minimalDirections(a, b).forEach([&](Direction dir) {
                const NodeId next = ft.neighbor(a, dir);
                ASSERT_NE(next, kInvalidNode);
                EXPECT_EQ(ft.distance(next, b), d - 1);
            });
        }
    }
}

TEST(FatTree, ChannelClassesAndNames)
{
    const FatTree ft(2, 2);
    for (ChannelId c = 0; c < ft.numChannels(); ++c) {
        const ChannelClass cc = ft.channelClass(c);
        EXPECT_TRUE(cc.tag == "up" || cc.tag == "down");
        EXPECT_EQ(cc.direction, cc.tag == "up" ? 1 : -1);
        EXPECT_GE(cc.level, 0);
        EXPECT_LT(cc.level, 2);
    }
    EXPECT_EQ(ft.dirName(ft.downDir(1)), "down1");
    EXPECT_EQ(ft.dirName(ft.upDir(0)), "up0");
    // Terminals and switches render distinctly.
    EXPECT_EQ(ft.nodeName(0), "t0");
    EXPECT_EQ(ft.nodeName(ft.switchId(1, 0)), "s1.0");
}

TEST(FatTree, SingleLevelDegenerateTree)
{
    // fat-tree(2,1): 2 terminals under one switch.
    const FatTree ft(2, 1);
    EXPECT_EQ(ft.numTerminals(), 2);
    EXPECT_EQ(ft.numNodes(), 3);
    EXPECT_EQ(ft.distance(0, 1), 2);
}

} // namespace
} // namespace turnnet
