/**
 * @file
 * Tests for the binary n-cube topology.
 */

#include <gtest/gtest.h>

#include "turnnet/topology/hypercube.hpp"

namespace turnnet {
namespace {

TEST(Hypercube, NamesItself)
{
    EXPECT_EQ(Hypercube(8).name(), "binary 8-cube");
}

TEST(Hypercube, HasPowerOfTwoNodes)
{
    EXPECT_EQ(Hypercube(3).numNodes(), 8);
    EXPECT_EQ(Hypercube(8).numNodes(), 256);
}

TEST(Hypercube, EveryNodeHasNNeighbors)
{
    const Hypercube cube(5);
    for (NodeId n = 0; n < cube.numNodes(); ++n)
        EXPECT_EQ(cube.directionsFrom(n).size(), 5);
}

TEST(Hypercube, NeighborsAreBitFlips)
{
    const Hypercube cube(4);
    const NodeId n = 0b0110;
    // Bit 0 is 0: positive direction exists, negative does not.
    EXPECT_EQ(cube.neighbor(n, Direction::positive(0)), 0b0111);
    EXPECT_EQ(cube.neighbor(n, Direction::negative(0)), kInvalidNode);
    // Bit 1 is 1: negative direction exists (1 -> 0).
    EXPECT_EQ(cube.neighbor(n, Direction::negative(1)), 0b0100);
    EXPECT_EQ(cube.neighbor(n, Direction::positive(1)), kInvalidNode);
}

TEST(Hypercube, DistanceIsHamming)
{
    const Hypercube cube(8);
    EXPECT_EQ(cube.distance(0b10110101, 0b10110101), 0);
    EXPECT_EQ(cube.distance(0b10110101, 0b00110100), 2);
    EXPECT_EQ(cube.distance(0, 0xFF), 8);
    EXPECT_EQ(Hypercube::hamming(0b101, 0b010), 3);
}

TEST(Hypercube, StaticBitHelpers)
{
    EXPECT_EQ(Hypercube::bit(0b1010, 1), 1);
    EXPECT_EQ(Hypercube::bit(0b1010, 0), 0);
    EXPECT_EQ(Hypercube::flip(0b1010, 0), 0b1011);
    EXPECT_EQ(Hypercube::flip(0b1010, 3), 0b0010);
}

TEST(Hypercube, AddressStringIsMsbFirst)
{
    const Hypercube cube(4);
    EXPECT_EQ(cube.addressString(0b0101), "0101");
    EXPECT_EQ(cube.addressString(0b1000), "1000");
}

TEST(Hypercube, MinimalDirectionsAreDifferingBits)
{
    const Hypercube cube(4);
    const DirectionSet dirs = cube.minimalDirections(0b0011, 0b0110);
    // Bits 0 (1 -> 0) and 2 (0 -> 1) differ.
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(Direction::negative(0)));
    EXPECT_TRUE(dirs.contains(Direction::positive(2)));
}

TEST(Hypercube, ChannelCountIsN2n)
{
    // n * 2^n unidirectional channels: each node owns n outgoing.
    const Hypercube cube(6);
    EXPECT_EQ(cube.numChannels(), 6 * 64);
    EXPECT_FALSE(cube.hasWrapChannels());
}

TEST(Hypercube, MeanUniformDistanceIsHalfN)
{
    // The paper reports 4.01 hops for uniform traffic in the 8-cube;
    // the exact mean over distinct pairs is n/2 * 2^n/(2^n - 1).
    const Hypercube cube(8);
    double sum = 0.0;
    for (NodeId a = 0; a < cube.numNodes(); ++a)
        for (NodeId b = 0; b < cube.numNodes(); ++b)
            sum += cube.distance(a, b);
    const double pairs =
        static_cast<double>(cube.numNodes()) * (cube.numNodes() - 1);
    EXPECT_NEAR(sum / pairs, 4.0 * 256.0 / 255.0, 1e-9);
}

} // namespace
} // namespace turnnet
