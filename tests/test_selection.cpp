/**
 * @file
 * Tests for the input and output selection policies (Section 6 and
 * the selection-policy ablation).
 */

#include <gtest/gtest.h>

#include <map>

#include "turnnet/network/selection.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

TEST(PolicyParsing, RoundTrips)
{
    EXPECT_EQ(parseInputPolicy("fcfs"), InputPolicy::Fcfs);
    EXPECT_EQ(parseInputPolicy("random"), InputPolicy::Random);
    EXPECT_EQ(parseInputPolicy("fixed"), InputPolicy::FixedPriority);
    EXPECT_EQ(toString(InputPolicy::Fcfs), "fcfs");

    EXPECT_EQ(parseOutputPolicy("lowest-dim"),
              OutputPolicy::LowestDim);
    EXPECT_EQ(parseOutputPolicy("xy"), OutputPolicy::LowestDim);
    EXPECT_EQ(parseOutputPolicy("random"), OutputPolicy::Random);
    EXPECT_EQ(parseOutputPolicy("straight-first"),
              OutputPolicy::StraightFirst);
    EXPECT_EQ(parseOutputPolicy("most-remaining"),
              OutputPolicy::MostRemaining);
    EXPECT_EQ(toString(OutputPolicy::MostRemaining),
              "most-remaining");
}

TEST(PolicyParsingDeath, UnknownNames)
{
    EXPECT_DEATH(parseInputPolicy("bogus"), "unknown input policy");
    EXPECT_DEATH(parseOutputPolicy("bogus"),
                 "unknown output policy");
}

TEST(InputSelection, FcfsPicksEarliestArrival)
{
    Rng rng(1);
    const std::vector<InputRequest> reqs{
        {10, 100, 0}, {11, 90, 1}, {12, 95, 2}};
    EXPECT_EQ(selectInput(InputPolicy::Fcfs, reqs, rng).input, 11);
}

TEST(InputSelection, FcfsBreaksTiesByPort)
{
    Rng rng(1);
    const std::vector<InputRequest> reqs{
        {10, 90, 2}, {11, 90, 1}, {12, 95, 0}};
    EXPECT_EQ(selectInput(InputPolicy::Fcfs, reqs, rng).input, 11);
}

TEST(InputSelection, FixedPriorityIgnoresArrival)
{
    Rng rng(1);
    const std::vector<InputRequest> reqs{
        {10, 100, 1}, {11, 5, 2}, {12, 500, 0}};
    EXPECT_EQ(
        selectInput(InputPolicy::FixedPriority, reqs, rng).input,
        12);
}

TEST(InputSelection, RandomCoversAllRequesters)
{
    Rng rng(9);
    const std::vector<InputRequest> reqs{
        {10, 1, 0}, {11, 1, 1}, {12, 1, 2}};
    std::map<std::int32_t, int> counts;
    for (int i = 0; i < 3000; ++i)
        ++counts[selectInput(InputPolicy::Random, reqs, rng).input];
    EXPECT_EQ(counts.size(), 3u);
    for (const auto &[input, count] : counts)
        EXPECT_GT(count, 800);
}

class OutputSelectionTest : public ::testing::Test
{
  protected:
    Mesh mesh_{8, 8};
    Rng rng_{4};
};

TEST_F(OutputSelectionTest, LowestDimPrefersDimensionZero)
{
    DirectionSet candidates;
    candidates.insert(Direction::positive(1));
    candidates.insert(Direction::positive(0));
    const Direction chosen = selectOutput(
        OutputPolicy::LowestDim, candidates, Direction::local(),
        mesh_, mesh_.nodeOf({1, 1}), mesh_.nodeOf({4, 4}), rng_);
    EXPECT_EQ(chosen, Direction::positive(0));
}

TEST_F(OutputSelectionTest, StraightFirstKeepsHeading)
{
    DirectionSet candidates;
    candidates.insert(Direction::positive(0));
    candidates.insert(Direction::positive(1));
    const Direction chosen = selectOutput(
        OutputPolicy::StraightFirst, candidates,
        Direction::positive(1), mesh_, mesh_.nodeOf({1, 1}),
        mesh_.nodeOf({4, 4}), rng_);
    EXPECT_EQ(chosen, Direction::positive(1));

    // Falls back to lowest dim when straight is unavailable.
    const Direction fallback = selectOutput(
        OutputPolicy::StraightFirst, candidates,
        Direction::negative(1), mesh_, mesh_.nodeOf({1, 1}),
        mesh_.nodeOf({4, 4}), rng_);
    EXPECT_EQ(fallback, Direction::positive(0));
}

TEST_F(OutputSelectionTest, MostRemainingPicksLongestAxis)
{
    DirectionSet candidates;
    candidates.insert(Direction::positive(0));
    candidates.insert(Direction::positive(1));
    // From (1,1) to (2,6): dimension 1 has 5 hops left, dimension 0
    // has 1.
    const Direction chosen = selectOutput(
        OutputPolicy::MostRemaining, candidates, Direction::local(),
        mesh_, mesh_.nodeOf({1, 1}), mesh_.nodeOf({2, 6}), rng_);
    EXPECT_EQ(chosen, Direction::positive(1));
}

TEST_F(OutputSelectionTest, RandomStaysInsideCandidates)
{
    DirectionSet candidates;
    candidates.insert(Direction::negative(1));
    candidates.insert(Direction::positive(0));
    std::map<int, int> counts;
    for (int i = 0; i < 2000; ++i) {
        const Direction chosen = selectOutput(
            OutputPolicy::Random, candidates, Direction::local(),
            mesh_, mesh_.nodeOf({4, 4}), mesh_.nodeOf({6, 2}),
            rng_);
        EXPECT_TRUE(candidates.contains(chosen));
        ++counts[chosen.index()];
    }
    EXPECT_EQ(counts.size(), 2u);
    for (const auto &[idx, count] : counts)
        EXPECT_GT(count, 600);
}

TEST_F(OutputSelectionTest, SingleCandidateAlwaysWins)
{
    DirectionSet only;
    only.insert(Direction::negative(0));
    for (const OutputPolicy policy :
         {OutputPolicy::LowestDim, OutputPolicy::Random,
          OutputPolicy::StraightFirst,
          OutputPolicy::MostRemaining}) {
        EXPECT_EQ(selectOutput(policy, only, Direction::local(),
                               mesh_, mesh_.nodeOf({4, 4}),
                               mesh_.nodeOf({0, 4}), rng_),
                  Direction::negative(0));
    }
}

} // namespace
} // namespace turnnet
