/**
 * @file
 * Tests for virtual-channel routing: the Dally-Seitz dateline
 * scheme (minimal torus routing with 2 VCs — what the turn model
 * deliberately avoids paying for) and the double-y scheme (fully
 * adaptive minimal 2D-mesh routing, the paper's reference [18]).
 * Deadlock freedom is decided by the extended (channel, vc)
 * dependency graph.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/analysis/vc_cdg.hpp"
#include "turnnet/routing/dateline_torus.hpp"
#include "turnnet/routing/double_y.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"

namespace turnnet {
namespace {

std::vector<VcCandidate>
routeOf(const VcRoutingFunction &routing, const Topology &topo,
        NodeId cur, NodeId dest, Direction in_dir = Direction::local(),
        int in_vc = kNoVc)
{
    std::vector<VcCandidate> out;
    routing.route(topo, cur, dest, in_dir, in_vc, out);
    return out;
}

TEST(Dateline, SingleMinimalCandidatePerHop)
{
    const Torus torus(5, 2);
    const DatelineTorus dateline;
    for (NodeId s = 0; s < torus.numNodes(); ++s) {
        for (NodeId d = 0; d < torus.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto cands = routeOf(dateline, torus, s, d);
            ASSERT_EQ(cands.size(), 1u);
            const NodeId next = torus.neighbor(s, cands[0].dir);
            EXPECT_EQ(torus.distance(next, d),
                      torus.distance(s, d) - 1)
                << s << " -> " << d;
        }
    }
}

TEST(Dateline, VcZeroWhileTheWrapLiesAhead)
{
    const Torus torus(4, 2);
    const DatelineTorus dateline;
    // (2,0) -> (0,0): forward distance 2 (tie resolved positive),
    // so the packet will cross the wrap: VC 0.
    const auto before = routeOf(dateline, torus,
                                torus.nodeOf({2, 0}),
                                torus.nodeOf({0, 0}));
    ASSERT_EQ(before.size(), 1u);
    EXPECT_EQ(before[0].dir, Direction::positive(0));
    EXPECT_EQ(before[0].vc, 0);

    // After the wrap, at (3,0) -> hop to (0,0): still ahead: vc 0.
    const auto at_edge = routeOf(dateline, torus,
                                 torus.nodeOf({3, 0}),
                                 torus.nodeOf({0, 0}),
                                 Direction::positive(0), 0);
    ASSERT_EQ(at_edge.size(), 1u);
    EXPECT_EQ(at_edge[0].vc, 0);

    // A packet with no wrap in its future uses VC 1.
    const auto plain = routeOf(dateline, torus,
                               torus.nodeOf({0, 1}),
                               torus.nodeOf({1, 1}));
    ASSERT_EQ(plain.size(), 1u);
    EXPECT_EQ(plain[0].vc, 1);

    // ... including one that has already crossed: (3,1) -> (1,1)
    // wraps; after landing at (0,1) the remaining leg is wrap-free.
    const auto after = routeOf(dateline, torus,
                               torus.nodeOf({0, 1}),
                               torus.nodeOf({1, 1}),
                               Direction::positive(0), 0);
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].vc, 1);
}

TEST(Dateline, ExtendedCdgIsAcyclic)
{
    const DatelineTorus dateline;
    EXPECT_TRUE(isVcDeadlockFree(Torus(4, 2), dateline));
    EXPECT_TRUE(isVcDeadlockFree(Torus(5, 2), dateline));
    EXPECT_TRUE(
        isVcDeadlockFree(Torus(std::vector<int>{3, 4, 3}),
                         dateline));
    EXPECT_TRUE(isVcDeadlockFree(Torus(8, 1), dateline));
}

TEST(Dateline, MinimalTorusRoutingWithoutVcsWouldDeadlock)
{
    // The point of the comparison: squeeze the same minimal
    // dimension-order relation onto a single VC and the ring cycles
    // return. (Section 4.2: minimal deadlock-free torus routing is
    // impossible without extra channels for k > 4.)
    class SingleVcDateline : public VcRoutingFunction
    {
      public:
        std::string name() const override { return "dateline-1vc"; }
        int numVcs() const override { return 1; }
        void
        route(const Topology &topo, NodeId cur, NodeId dest,
              Direction in_dir, int in_vc,
              std::vector<VcCandidate> &out) const override
        {
            std::vector<VcCandidate> wide;
            inner_.route(topo, cur, dest, in_dir, in_vc, wide);
            for (VcCandidate c : wide) {
                c.vc = 0;
                out.push_back(c);
            }
        }

      private:
        DatelineTorus inner_;
    };
    const SingleVcDateline squeezed;
    EXPECT_FALSE(isVcDeadlockFree(Torus(5, 2), squeezed));
    EXPECT_FALSE(isVcDeadlockFree(Torus(8, 1), squeezed));
}

TEST(DoubleY, FullyAdaptiveOverPhysicalPaths)
{
    // Every shortest physical path is available: the path count of
    // the double-y relation equals S_f for all pairs.
    const Mesh mesh(5, 5);
    const DoubleY dy;
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            // Count paths by DFS over the relation (the VC choice
            // is a function of position, so physical paths are in
            // bijection with relation paths).
            double count = 0;
            auto dfs = [&](auto &&self, NodeId at) -> double {
                if (at == d)
                    return 1.0;
                double total = 0;
                for (const VcCandidate &c :
                     routeOf(dy, mesh, at, d)) {
                    total += self(self, mesh.neighbor(at, c.dir));
                }
                return total;
            };
            count = dfs(dfs, s);
            EXPECT_EQ(count, pathsFullyAdaptive(mesh, s, d))
                << s << " -> " << d;
        }
    }
}

TEST(DoubleY, WestPhaseRidesLayerOne)
{
    const Mesh mesh(6, 6);
    const DoubleY dy;
    // Northwest destination: west on the x channel, north on layer
    // 1.
    const auto nw = routeOf(dy, mesh, mesh.nodeOf({4, 2}),
                            mesh.nodeOf({1, 5}));
    ASSERT_EQ(nw.size(), 2u);
    EXPECT_EQ(nw[0].dir, Direction::negative(0));
    EXPECT_EQ(nw[0].vc, 0);
    EXPECT_EQ(nw[1].dir, Direction::positive(1));
    EXPECT_EQ(nw[1].vc, 0);

    // Northeast destination: vertical hops on layer 2.
    const auto ne = routeOf(dy, mesh, mesh.nodeOf({1, 2}),
                            mesh.nodeOf({4, 5}));
    ASSERT_EQ(ne.size(), 2u);
    EXPECT_EQ(ne[1].dir, Direction::positive(1));
    EXPECT_EQ(ne[1].vc, 1);

    // Pure vertical: layer 2.
    const auto v = routeOf(dy, mesh, mesh.nodeOf({3, 1}),
                           mesh.nodeOf({3, 4}));
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0].vc, 1);
}

TEST(DoubleY, ExtendedCdgIsAcyclic)
{
    const DoubleY dy;
    EXPECT_TRUE(isVcDeadlockFree(Mesh(4, 4), dy));
    EXPECT_TRUE(isVcDeadlockFree(Mesh(6, 6), dy));
    EXPECT_TRUE(isVcDeadlockFree(Mesh(5, 3), dy));
}

TEST(DoubleY, FullAdaptivityOnOneLayerWouldDeadlock)
{
    // Sanity for the analysis: squeezing the same fully adaptive
    // relation onto a single y layer reintroduces the Figure 1
    // cycles.
    class SqueezedDoubleY : public VcRoutingFunction
    {
      public:
        std::string name() const override { return "double-y-1vc"; }
        int numVcs() const override { return 2; }
        void
        route(const Topology &topo, NodeId cur, NodeId dest,
              Direction in_dir, int in_vc,
              std::vector<VcCandidate> &out) const override
        {
            std::vector<VcCandidate> wide;
            inner_.route(topo, cur, dest, in_dir, in_vc, wide);
            for (VcCandidate c : wide) {
                c.vc = 0;
                out.push_back(c);
            }
        }

      private:
        DoubleY inner_;
    };
    EXPECT_FALSE(isVcDeadlockFree(Mesh(4, 4), SqueezedDoubleY()));
}

TEST(SingleVcAdapter, MirrorsTheInnerRelation)
{
    const Mesh mesh(4, 4);
    const RoutingPtr wf = makeRouting({.name = "west-first"});
    const SingleVcAdapter adapter(wf);
    EXPECT_EQ(adapter.numVcs(), 1);
    EXPECT_EQ(adapter.name(), "west-first");
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto cands = routeOf(adapter, mesh, s, d);
            DirectionSet dirs;
            for (const VcCandidate &c : cands) {
                EXPECT_EQ(c.vc, 0);
                dirs.insert(c.dir);
            }
            EXPECT_EQ(dirs.mask(),
                      wf->route(mesh, s, d, Direction::local())
                          .mask());
        }
    }
}

TEST(VcCdg, AgreesWithPlainCdgForSingleVcAlgorithms)
{
    const Mesh mesh(4, 4);
    EXPECT_TRUE(isVcDeadlockFree(
        mesh, SingleVcAdapter(makeRouting({.name = "west-first"}))));
    EXPECT_FALSE(isVcDeadlockFree(
        mesh, SingleVcAdapter(makeRouting({.name = "fully-adaptive"}))));
}

TEST(VcFactory, ResolvesNames)
{
    EXPECT_EQ(makeVcRouting({.name = "dateline"})->numVcs(), 2);
    EXPECT_EQ(makeVcRouting({.name = "double-y"})->numVcs(), 2);
    EXPECT_EQ(makeVcRouting({.name = "west-first"})->numVcs(), 1);
    EXPECT_EQ(makeVcRouting({.name = "west-first"})->name(), "west-first");
}

TEST(VcChecks, TopologyValidation)
{
    EXPECT_DEATH(DatelineTorus().checkTopology(Mesh(4, 4)),
                 "tori");
    EXPECT_DEATH(DoubleY().checkTopology(Torus(4, 2)),
                 "2D meshes");
    EXPECT_DEATH(DoubleY().checkTopology(
                     Mesh(std::vector<int>{3, 3, 3})),
                 "2D meshes");
}

} // namespace
} // namespace turnnet
