/**
 * @file
 * Tests for deadlock forensics: a wedged fully adaptive fabric must
 * yield a cyclic wait-for chain that closes in the routing
 * relation's channel dependency graph, while turn-model fabrics
 * under the same stress must never produce a wait cycle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "turnnet/common/json.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/trace/forensics.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

/** The deadlock_demo stress workload: seed 3 wedges the
 *  unrestricted baseline within the watchdog window. */
SimConfig
stressConfig()
{
    SimConfig config;
    config.load = 0.5;
    config.lengths = MessageLengthMix::fixed(200);
    config.watchdogCycles = 8000;
    config.warmupCycles = 100;
    config.measureCycles = 40000;
    config.drainCycles = 100;
    config.seed = 3;
    return config;
}

TEST(Forensics, WedgedFabricYieldsCyclicWaitChain)
{
    const Mesh mesh(4, 4);
    Simulator sim(mesh, makeRouting({.name = "fully-adaptive"}),
                  makeTraffic("uniform", mesh), stressConfig());
    const SimResult result = sim.run();
    ASSERT_TRUE(result.deadlocked);

    const DeadlockReport report = collectDeadlockForensics(sim);
    EXPECT_TRUE(report.anyBlocked);
    EXPECT_FALSE(report.worms.empty());

    // The watchdog fired, so the wait-for graph must contain a
    // cycle, and every hop of the witness must be a genuine channel
    // dependency of the routing relation.
    ASSERT_FALSE(report.waitCycle.empty());
    EXPECT_EQ(report.cyclePackets.size(), report.waitCycle.size());
    EXPECT_TRUE(report.cycleClosesInCdg);
    EXPECT_TRUE(report.routingCdgCyclic);

    // Every worm in the dump is internally consistent: it sits on a
    // unit, and a front waiting for allocation names at least one
    // wanted channel unless it is stuck on a busy ejection port.
    for (const WormWait &w : report.worms) {
        EXPECT_NE(w.unit, kNoUnit);
        EXPECT_LT(w.node, static_cast<NodeId>(mesh.numNodes()));
        if (w.headerAllocated) {
            EXPECT_EQ(w.wanted.size(), 1u);
        }
    }

    // The cycle's channels are held by the reported worms.
    for (std::size_t i = 0; i < report.waitCycle.size(); ++i) {
        const PacketId holder = report.cyclePackets[i];
        const auto it = std::find_if(
            report.worms.begin(), report.worms.end(),
            [&](const WormWait &w) { return w.packet == holder; });
        EXPECT_NE(it, report.worms.end())
            << "cycle channel " << report.waitCycle[i]
            << " held by unreported worm " << holder;
    }
}

TEST(Forensics, TurnModelFabricNeverFormsAWaitCycle)
{
    // Same stress, two turns prohibited: saturated but alive. Any
    // momentary wait chain must be acyclic — the theorem the turn
    // model proves, observed on the live fabric.
    const Mesh mesh(4, 4);
    for (const char *alg : {"west-first", "negative-first"}) {
        Simulator sim(mesh, makeRouting({.name = alg, .dims = 2}),
                      makeTraffic("uniform", mesh), stressConfig());
        const SimResult result = sim.run();
        EXPECT_FALSE(result.deadlocked) << alg;
        const DeadlockReport report = collectDeadlockForensics(sim);
        EXPECT_TRUE(report.waitCycle.empty()) << alg;
        EXPECT_FALSE(report.routingCdgCyclic) << alg;
    }
}

TEST(Forensics, IdleFabricReportsNothing)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.0; // scripted mode, nothing injected
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  config);
    const DeadlockReport report = collectDeadlockForensics(sim);
    EXPECT_FALSE(report.anyBlocked);
    EXPECT_TRUE(report.worms.empty());
    EXPECT_TRUE(report.waitCycle.empty());
}

TEST(Forensics, ToStringNamesTheCycle)
{
    const Mesh mesh(4, 4);
    Simulator sim(mesh, makeRouting({.name = "fully-adaptive"}),
                  makeTraffic("uniform", mesh), stressConfig());
    ASSERT_TRUE(sim.run().deadlocked);
    const DeadlockReport report = collectDeadlockForensics(sim);
    const std::string dump = report.toString(mesh);
    EXPECT_NE(dump.find("cycl"), std::string::npos);
    EXPECT_NE(dump.find("ch"), std::string::npos);
    EXPECT_NE(dump.find("holds"), std::string::npos);
    EXPECT_NE(dump.find("wants"), std::string::npos);
}

TEST(Forensics, JsonRoundTripsThroughTheParser)
{
    const Mesh mesh(4, 4);
    Simulator sim(mesh, makeRouting({.name = "fully-adaptive"}),
                  makeTraffic("uniform", mesh), stressConfig());
    ASSERT_TRUE(sim.run().deadlocked);
    const DeadlockReport report = collectDeadlockForensics(sim);

    const json::ParseResult parsed =
        json::parse(report.toJson(mesh));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const json::Value &doc = parsed.value;
    ASSERT_TRUE(doc.isObject());
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->asString(),
              "turnnet.deadlock_forensics/1");
    EXPECT_TRUE(doc.find("any_blocked")->asBool());
    EXPECT_TRUE(doc.find("routing_cdg_cyclic")->asBool());
    EXPECT_TRUE(doc.find("cycle_closes_in_cdg")->asBool());
    ASSERT_NE(doc.find("worms"), nullptr);
    EXPECT_EQ(doc.find("worms")->size(), report.worms.size());
    ASSERT_NE(doc.find("wait_cycle"), nullptr);
    EXPECT_EQ(doc.find("wait_cycle")->size(),
              report.waitCycle.size());
}

} // namespace
} // namespace turnnet
