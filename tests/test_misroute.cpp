/**
 * @file
 * Tests for nonminimal simulation: with a nonminimal turn-model
 * relation the router misroutes around blocked channels (the
 * adaptivity benefit the paper's Figures 5b/9b/10b illustrate),
 * productive channels stay preferred, livelock never happens, and
 * minimal relations are unaffected by the machinery.
 */

#include <gtest/gtest.h>

#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

SimConfig
scriptedConfig()
{
    SimConfig config;
    config.load = 0.0;
    config.watchdogCycles = 5000;
    config.misrouteAfterWait = 4;
    return config;
}

TEST(Misroute, NonminimalWestFirstDetoursAroundABlocker)
{
    // Blocker X (dest (2,0)) holds the east channel out of (1,0)
    // for ~120 cycles. Victim Y: (0,0) -> (3,0), a straight-east
    // route that shares only that channel with the blocker.
    // Minimal west-first must wait; nonminimal west-first detours
    // (e.g. north at (1,0)) and arrives far earlier with extra
    // hops.
    const Mesh mesh(4, 4);
    struct Outcome
    {
        Cycle done = 0;
        std::uint32_t hops = 0;
    };
    auto run = [&](bool minimal) {
        Simulator sim(mesh, makeRouting(
                          {.name = "west-first", .minimal = minimal}),
                      nullptr, scriptedConfig());
        Outcome outcome;
        PacketId victim = 0;
        sim.onDelivered = [&](const PacketInfo &info, Cycle at) {
            if (info.id == victim) {
                outcome.done = at;
                outcome.hops = info.hops;
            }
        };
        sim.injectMessage(mesh.nodeOf({1, 0}), mesh.nodeOf({2, 0}),
                          120);
        victim = sim.injectMessage(mesh.nodeOf({0, 0}),
                                   mesh.nodeOf({3, 0}), 10);
        EXPECT_TRUE(sim.runUntilIdle(5000));
        return outcome;
    };

    const Outcome blocked = run(true);
    const Outcome detoured = run(false);
    EXPECT_GT(blocked.done, 100u);
    EXPECT_LT(detoured.done, 40u);
    EXPECT_EQ(blocked.hops, 3u);
    EXPECT_GT(detoured.hops, 3u); // took the longer way around
}

TEST(Misroute, ProductiveChannelsPreferredWhenFree)
{
    // With nothing blocked, the nonminimal variant takes exactly
    // the minimal path: unproductive channels are only a fallback.
    const Mesh mesh(4, 4);
    Simulator sim(mesh, makeRouting({.name = "negative-first", .dims = 2, .minimal = false}),
                  nullptr, scriptedConfig());
    std::uint32_t hops = 0;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        hops = info.hops;
    };
    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({3, 2}), 8);
    ASSERT_TRUE(sim.runUntilIdle(1000));
    EXPECT_EQ(hops, 5u);
}

TEST(Misroute, WaitThresholdDelaysTheDetour)
{
    // With a large misroute threshold the nonminimal router
    // behaves like the minimal one on a short blockage.
    const Mesh mesh(4, 4);
    auto run = [&](Cycle threshold) {
        SimConfig config = scriptedConfig();
        config.misrouteAfterWait = threshold;
        Simulator sim(mesh, makeRouting({.name = "west-first", .dims = 2, .minimal = false}),
                      nullptr, config);
        Cycle done = 0;
        PacketId victim = 0;
        sim.onDelivered = [&](const PacketInfo &info, Cycle at) {
            if (info.id == victim)
                done = at;
        };
        sim.injectMessage(mesh.nodeOf({1, 0}), mesh.nodeOf({2, 0}),
                          60);
        victim = sim.injectMessage(mesh.nodeOf({0, 0}),
                                   mesh.nodeOf({3, 0}), 10);
        EXPECT_TRUE(sim.runUntilIdle(5000));
        return done;
    };
    const Cycle eager = run(2);
    const Cycle patient = run(1000);
    EXPECT_LT(eager, 40u);
    EXPECT_GT(patient, 60u); // waited out the whole blocker
}

TEST(Misroute, NonminimalStressDoesNotDeadlockOrLivelock)
{
    // The turn rules keep the nonminimal relation acyclic and every
    // path strictly monotone in the proof numbering; under stress
    // nothing wedges and the in-simulator livelock bound never
    // fires.
    const Mesh mesh(4, 4);
    for (const char *alg :
         {"west-first", "north-last", "negative-first"}) {
        SimConfig config;
        config.load = 0.4;
        config.lengths = MessageLengthMix::fixed(60);
        config.watchdogCycles = 8000;
        config.warmupCycles = 200;
        config.measureCycles = 10000;
        config.drainCycles = 200;
        config.misrouteAfterWait = 2;
        config.seed = 9;
        Simulator sim(mesh, makeRouting({.name = alg, .dims = 2, .minimal = false}),
                      makeTraffic("uniform", mesh), config);
        const SimResult result = sim.run();
        EXPECT_FALSE(result.deadlocked) << alg;
        EXPECT_GT(result.packetsFinished, 0u) << alg;
        // Misrouting happened but stayed bounded.
        EXPECT_GE(result.avgHops, 1.0) << alg;
        EXPECT_LT(result.avgHops, 30.0) << alg;
    }
}

TEST(Misroute, MinimalRelationsAreUnaffectedByTheThreshold)
{
    const Mesh mesh(4, 4);
    auto run = [&](Cycle threshold) {
        SimConfig config;
        config.load = 0.1;
        config.warmupCycles = 200;
        config.measureCycles = 2000;
        config.drainCycles = 2000;
        config.misrouteAfterWait = threshold;
        config.seed = 4;
        Simulator sim(mesh, makeRouting({.name = "west-first"}),
                      makeTraffic("uniform", mesh), config);
        return sim.run();
    };
    const SimResult a = run(0);
    const SimResult b = run(500);
    EXPECT_DOUBLE_EQ(a.avgTotalLatencyUs, b.avgTotalLatencyUs);
    EXPECT_EQ(a.packetsFinished, b.packetsFinished);
}

} // namespace
} // namespace turnnet
