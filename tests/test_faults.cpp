/**
 * @file
 * Fault model and fault-aware routing tests: FaultSet bookkeeping,
 * the surviving-topology view, disconnected-destination detection,
 * torus wraparound link faults, zero-fault equivalence with the seed
 * nonminimal algorithms, and CDG acyclicity over random fault sets.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/fault_tolerance.hpp"
#include "turnnet/routing/fault_aware.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"

namespace turnnet {
namespace {

/** Arrival directions a packet can have at @p node: local (at the
 *  source) plus the direction of every channel into the node. */
std::vector<Direction>
arrivalDirections(const Topology &topo, NodeId node)
{
    std::vector<Direction> dirs{Direction::local()};
    for (const ChannelId c : topo.channelsInto(node))
        dirs.push_back(topo.channel(c).dir);
    return dirs;
}

TEST(FaultSet, ChannelAndLinkBookkeeping)
{
    const Mesh mesh(4, 4);
    FaultSet faults;
    EXPECT_TRUE(faults.empty());

    const NodeId corner = mesh.nodeOf({0, 0});
    const ChannelId east =
        mesh.channelFrom(corner, Direction::positive(0));
    const ChannelId back = mesh.channelFrom(
        mesh.neighbor(corner, Direction::positive(0)),
        Direction::negative(0));

    faults.failLink(mesh, corner, Direction::positive(0));
    EXPECT_FALSE(faults.empty());
    EXPECT_EQ(faults.numFailedChannels(), 2u);
    EXPECT_TRUE(faults.channelFailed(east));
    EXPECT_TRUE(faults.channelFailed(back));
    EXPECT_FALSE(faults.nodeFailed(corner));

    // Failing the same link again is idempotent.
    faults.failLink(mesh, corner, Direction::positive(0));
    EXPECT_EQ(faults.numFailedChannels(), 2u);

    FaultSet same;
    same.failChannel(back);
    same.failChannel(east);
    EXPECT_EQ(faults, same);
    EXPECT_FALSE(faults.toString(mesh).empty());
}

TEST(FaultSet, NodeFailureImpliesIncidentChannels)
{
    const Mesh mesh(4, 4);
    FaultSet faults;
    const NodeId center = mesh.nodeOf({1, 1});
    faults.failNode(mesh, center);

    EXPECT_TRUE(faults.nodeFailed(center));
    EXPECT_EQ(faults.numFailedNodes(), 1u);
    // Degree-4 node: 4 channels in, 4 out.
    EXPECT_EQ(faults.numFailedChannels(), 8u);
    for (const ChannelId c : mesh.channelsFrom(center))
        EXPECT_TRUE(faults.channelFailed(c));
    for (const ChannelId c : mesh.channelsInto(center))
        EXPECT_TRUE(faults.channelFailed(c));
}

TEST(FaultedTopologyView, SkipsDeadHardware)
{
    const Mesh mesh(4, 4);
    FaultSet faults;
    const NodeId corner = mesh.nodeOf({0, 0});
    faults.failLink(mesh, corner, Direction::positive(0));
    const FaultedTopologyView view(mesh, faults);

    EXPECT_EQ(view.neighbor(corner, Direction::positive(0)),
              kInvalidNode);
    EXPECT_EQ(view.channelFrom(corner, Direction::positive(0)),
              kInvalidChannel);
    EXPECT_FALSE(view.directionsFrom(corner).contains(
        Direction::positive(0)));
    EXPECT_TRUE(view.directionsFrom(corner).contains(
        Direction::positive(1)));
    EXPECT_EQ(view.numSurvivingChannels(),
              static_cast<std::size_t>(mesh.numChannels()) - 2);
    // One dead link leaves a 4x4 mesh connected.
    EXPECT_TRUE(view.connected());
    EXPECT_EQ(view.countDisconnectedPairs(), 0u);
}

TEST(FaultedTopologyView, DetectsDisconnectedDestinations)
{
    // Cut both links of corner (0,0): the corner is live but
    // isolated, so it can reach nobody and nobody can reach it.
    const Mesh mesh(4, 4);
    FaultSet faults;
    const NodeId corner = mesh.nodeOf({0, 0});
    faults.failLink(mesh, corner, Direction::positive(0));
    faults.failLink(mesh, corner, Direction::positive(1));
    const FaultedTopologyView view(mesh, faults);

    EXPECT_FALSE(view.connected());
    const std::vector<bool> from_corner = view.reachableFrom(corner);
    EXPECT_TRUE(from_corner[static_cast<std::size_t>(corner)]);
    int reachable = 0;
    for (const bool r : from_corner)
        reachable += r ? 1 : 0;
    EXPECT_EQ(reachable, 1);
    // 15 pairs out of the corner plus 15 into it.
    EXPECT_EQ(view.countDisconnectedPairs(), 30u);
}

TEST(FaultedTopologyView, DeadNodeIsNeitherSourceNorDestination)
{
    const Mesh mesh(3, 3);
    FaultSet faults;
    const NodeId center = mesh.nodeOf({1, 1});
    faults.failNode(mesh, center);
    const FaultedTopologyView view(mesh, faults);

    const std::vector<bool> reach =
        view.reachableFrom(mesh.nodeOf({0, 0}));
    EXPECT_FALSE(reach[static_cast<std::size_t>(center)]);
    // The mesh ring around the dead center stays connected, and
    // dead nodes do not count toward disconnected pairs.
    EXPECT_TRUE(view.connected());
    EXPECT_TRUE(view.reachableFrom(center).empty() ||
                !view.reachableFrom(center)[static_cast<std::size_t>(
                    mesh.nodeOf({0, 0}))]);
}

TEST(FaultedTopologyView, TorusWraparoundLinkFaults)
{
    const Torus torus(std::vector<int>{4, 4});
    FaultSet faults;
    // The +x link out of (3,0) is the wraparound back to (0,0).
    const NodeId edge = torus.nodeOf({3, 0});
    const NodeId wrap = torus.neighbor(edge, Direction::positive(0));
    EXPECT_EQ(wrap, torus.nodeOf({0, 0}));

    faults.failLink(torus, edge, Direction::positive(0));
    const FaultedTopologyView view(torus, faults);
    EXPECT_EQ(view.neighbor(edge, Direction::positive(0)),
              kInvalidNode);
    EXPECT_EQ(view.neighbor(wrap, Direction::negative(0)),
              kInvalidNode);
    // A torus has enough alternative paths to stay connected.
    EXPECT_TRUE(view.connected());
    EXPECT_EQ(view.numSurvivingChannels(),
              static_cast<std::size_t>(torus.numChannels()) - 2);
}

TEST(FaultSet, RandomLinksAreDeterministicAndDistinct)
{
    const Mesh mesh(6, 6);
    const FaultSet a = FaultSet::randomLinks(mesh, 4, 42);
    const FaultSet b = FaultSet::randomLinks(mesh, 4, 42);
    const FaultSet c = FaultSet::randomLinks(mesh, 4, 43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // 4 bidirectional links = 8 unidirectional channels, all
    // distinct.
    EXPECT_EQ(a.numFailedChannels(), 8u);
    EXPECT_EQ(a.numFailedNodes(), 0u);

    const FaultSet none = FaultSet::randomLinks(mesh, 0, 7);
    EXPECT_TRUE(none.empty());
}

TEST(FaultAware, ZeroFaultsMatchesSeedNegativeFirst)
{
    // With an empty FaultSet the fault-aware relation must be
    // identical, state for state, to the nonminimal seed algorithm
    // it shadows.
    const Mesh mesh(4, 4);
    const RoutingPtr ft =
        makeRouting({.name = "negative-first-ft"});
    const RoutingPtr seed =
        makeRouting({.name = "negative-first", .minimal = false});

    for (NodeId node = 0; node < mesh.numNodes(); ++node) {
        for (NodeId dest = 0; dest < mesh.numNodes(); ++dest) {
            for (const Direction in :
                 arrivalDirections(mesh, node)) {
                EXPECT_EQ(ft->route(mesh, node, dest, in),
                          seed->route(mesh, node, dest, in))
                    << "node " << node << " dest " << dest;
                EXPECT_EQ(ft->canComplete(mesh, node, dest, in),
                          seed->canComplete(mesh, node, dest, in));
            }
        }
    }
}

TEST(FaultAware, ZeroFaultsMatchesSeedPCube)
{
    const Hypercube cube(4);
    const RoutingPtr ft = makeRouting(
        {.name = "p-cube-ft", .dims = cube.numDims()});
    const RoutingPtr seed = makeRouting({.name = "p-cube",
                                         .dims = cube.numDims(),
                                         .minimal = false});

    for (NodeId node = 0; node < cube.numNodes(); ++node) {
        for (NodeId dest = 0; dest < cube.numNodes(); ++dest) {
            for (const Direction in :
                 arrivalDirections(cube, node)) {
                EXPECT_EQ(ft->route(cube, node, dest, in),
                          seed->route(cube, node, dest, in));
            }
        }
    }
}

TEST(FaultAware, NeverOffersDeadChannels)
{
    const Mesh mesh(4, 4);
    const FaultSet faults = FaultSet::randomLinks(mesh, 3, 9);
    const RoutingPtr ft = makeRouting(
        {.name = "negative-first-ft", .fault_set = faults});
    const FaultedTopologyView view(mesh, faults);

    for (NodeId node = 0; node < mesh.numNodes(); ++node) {
        for (NodeId dest = 0; dest < mesh.numNodes(); ++dest) {
            for (const Direction in :
                 arrivalDirections(mesh, node)) {
                ft->route(mesh, node, dest, in)
                    .forEach([&](Direction out) {
                        EXPECT_NE(view.channelFrom(node, out),
                                  kInvalidChannel)
                            << "dead channel offered at node "
                            << node;
                    });
            }
        }
    }
}

TEST(FaultTolerance, CdgStaysAcyclicOverRandomFaultSets)
{
    // The surviving CDG keeps the prohibited-turn set, so it is a
    // subgraph of the fault-free nonminimal CDG and must stay
    // acyclic — verified computationally per draw.
    const Mesh mesh(4, 4);
    for (const int count : {1, 2, 4}) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            const FaultSet faults =
                FaultSet::randomLinks(mesh, count, seed);
            const RoutingPtr ft = makeRouting(
                {.name = "negative-first-ft", .fault_set = faults});
            const FaultToleranceReport report =
                analyzeFaultTolerance(mesh, *ft, faults);
            EXPECT_TRUE(report.deadlockFree())
                << "count " << count << " seed " << seed << ": "
                << report.toString();
            EXPECT_GE(report.unreachablePairs,
                      report.disconnectedPairs);
        }
    }
}

TEST(FaultTolerance, PCubeCdgStaysAcyclicOverRandomFaultSets)
{
    const Hypercube cube(4);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const FaultSet faults =
            FaultSet::randomLinks(cube, 3, seed);
        const RoutingPtr ft = makeRouting({.name = "p-cube-ft",
                                           .dims = cube.numDims(),
                                           .fault_set = faults});
        const FaultToleranceReport report =
            analyzeFaultTolerance(cube, *ft, faults);
        EXPECT_TRUE(report.deadlockFree()) << report.toString();
        EXPECT_GE(report.unreachablePairs,
                  report.disconnectedPairs);
    }
}

TEST(FaultTolerance, ReportsDisconnectedDestinations)
{
    const Mesh mesh(4, 4);
    FaultSet faults;
    const NodeId corner = mesh.nodeOf({0, 0});
    faults.failLink(mesh, corner, Direction::positive(0));
    faults.failLink(mesh, corner, Direction::positive(1));
    const RoutingPtr ft = makeRouting(
        {.name = "negative-first-ft", .fault_set = faults});

    const FaultToleranceReport report =
        analyzeFaultTolerance(mesh, *ft, faults);
    EXPECT_TRUE(report.deadlockFree());
    EXPECT_EQ(report.livePairs, 16u * 15u);
    EXPECT_EQ(report.disconnectedPairs, 30u);
    EXPECT_GE(report.unreachablePairs, 30u);
    EXPECT_FALSE(report.fullyReachable());
}

TEST(FaultTolerance, NoFaultsFullyReachable)
{
    const Mesh mesh(4, 4);
    const RoutingPtr ft =
        makeRouting({.name = "negative-first-ft"});
    const FaultToleranceReport report =
        analyzeFaultTolerance(mesh, *ft, FaultSet{});
    EXPECT_TRUE(report.deadlockFree());
    EXPECT_EQ(report.disconnectedPairs, 0u);
    EXPECT_EQ(report.unreachablePairs, 0u);
    EXPECT_TRUE(report.fullyReachable());
}

TEST(RegistryDeath, FaultSetWithObliviousAlgorithmIsFatal)
{
    const Mesh mesh(4, 4);
    const FaultSet faults = FaultSet::randomLinks(mesh, 1, 1);
    EXPECT_DEATH(makeRouting({.name = "xy", .fault_set = faults}),
                 "fault-oblivious");
}

} // namespace
} // namespace turnnet
