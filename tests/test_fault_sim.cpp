/**
 * @file
 * Simulator fault-injection tests: one-shot activation, worm
 * severing with flit-conserving purges, unreachable-destination
 * flagging (never silent drops), dead-node semantics, zero-fault
 * bit-identity with the seed algorithm, and the fault-oblivious
 * contrast behavior.
 */

#include <gtest/gtest.h>

#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

SimConfig
scriptedConfig()
{
    SimConfig config;
    config.load = 0.0;
    config.watchdogCycles = 1000;
    return config;
}

/** Both links of mesh corner (0,0) — failing them isolates it. */
FaultSet
isolateCorner(const Mesh &mesh)
{
    FaultSet faults;
    const NodeId corner = mesh.nodeOf({0, 0});
    faults.failLink(mesh, corner, Direction::positive(0));
    faults.failLink(mesh, corner, Direction::positive(1));
    return faults;
}

TEST(FaultSim, UnreachableDestinationIsFlaggedNotDropped)
{
    const Mesh mesh(4, 4);
    const FaultSet faults = isolateCorner(mesh);
    SimConfig config = scriptedConfig();
    config.faults = faults;
    config.faultCycle = 0;
    Simulator sim(mesh,
                  makeRouting({.name = "negative-first-ft",
                               .fault_set = faults}),
                  nullptr, config);

    const NodeId corner = mesh.nodeOf({0, 0});
    const NodeId src = mesh.nodeOf({1, 1});
    const NodeId dst = mesh.nodeOf({3, 3});
    // Enqueued before activation: purged by the activation scan.
    sim.injectMessage(mesh.nodeOf({3, 3}), corner, 4);
    sim.injectMessage(src, dst, 4);
    ASSERT_TRUE(sim.runUntilIdle(1000));

    EXPECT_TRUE(sim.faultsActive());
    EXPECT_EQ(sim.packetsDelivered(), 1u);
    EXPECT_EQ(sim.packetsUnreachable(), 1u);
    EXPECT_EQ(sim.packetsDropped(), 0u);

    // After activation an unservable message is refused up front.
    EXPECT_EQ(sim.injectMessage(src, corner, 4), 0u);
    EXPECT_EQ(sim.packetsUnreachable(), 2u);
    // The isolated corner also cannot send.
    EXPECT_EQ(sim.injectMessage(corner, dst, 4), 0u);
    EXPECT_EQ(sim.packetsUnreachable(), 3u);
}

TEST(FaultSim, MidRunLinkFailureSeversWormAndConservesFlits)
{
    // A 10-flit worm is streaming (0,0) -> (3,0) when the middle
    // link dies under it at cycle 5: the worm is severed, the
    // packet purged as dropped, and every flit accounted for.
    const Mesh mesh(4, 4);
    FaultSet faults;
    faults.failLink(mesh, mesh.nodeOf({1, 0}),
                    Direction::positive(0));
    SimConfig config = scriptedConfig();
    config.faults = faults;
    config.faultCycle = 5;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  config);

    sim.injectMessage(mesh.nodeOf({0, 0}), mesh.nodeOf({3, 0}), 10);
    ASSERT_TRUE(sim.runUntilIdle(1000));

    EXPECT_TRUE(sim.faultsActive());
    EXPECT_EQ(sim.packetsDelivered(), 0u);
    EXPECT_EQ(sim.packetsDropped(), 1u);
    EXPECT_EQ(sim.packetsUnreachable(), 0u);
    EXPECT_GT(sim.flitsDropped(), 0u);
    // Conservation: every created flit was either consumed at the
    // destination before the failure or dropped with the worm.
    EXPECT_EQ(sim.flitsCreated(), 10u);
    EXPECT_EQ(sim.flitsDelivered() + sim.flitsDropped(), 10u);
}

TEST(FaultSim, DeadNodeNeitherSendsNorReceives)
{
    const Mesh mesh(4, 4);
    FaultSet faults;
    const NodeId dead = mesh.nodeOf({1, 1});
    faults.failNode(mesh, dead);
    SimConfig config = scriptedConfig();
    config.faults = faults;
    config.faultCycle = 3;
    Simulator sim(mesh,
                  makeRouting({.name = "negative-first-ft",
                               .fault_set = faults}),
                  nullptr, config);

    // Queued at the dead node before the failure: a casualty.
    sim.injectMessage(dead, mesh.nodeOf({3, 3}), 200);
    // Destined for the dead node: unreachable.
    sim.injectMessage(mesh.nodeOf({0, 3}), dead, 4);
    // Unrelated traffic keeps flowing.
    sim.injectMessage(mesh.nodeOf({2, 0}), mesh.nodeOf({3, 2}), 4);
    ASSERT_TRUE(sim.runUntilIdle(1000));

    EXPECT_EQ(sim.packetsDelivered(), 1u);
    EXPECT_EQ(sim.packetsDropped(), 1u);
    EXPECT_EQ(sim.packetsUnreachable(), 1u);
    EXPECT_EQ(sim.flitsCreated(),
              sim.flitsDelivered() + sim.flitsDropped());
}

TEST(FaultSim, ZeroFaultRunIsBitIdenticalToSeedAlgorithm)
{
    // The fault-aware relation with nothing broken must reproduce
    // the seed nonminimal algorithm's trajectory exactly, cycle for
    // cycle — fault awareness costs nothing when nothing is broken.
    const Mesh mesh(6, 6);
    SimConfig config;
    config.load = 0.05;
    config.warmupCycles = 500;
    config.measureCycles = 2000;
    config.drainCycles = 2000;
    config.seed = 11;

    const TrafficPtr traffic = makeTraffic("uniform", mesh);
    Simulator ft(mesh, makeRouting({.name = "negative-first-ft"}),
                 traffic, config);
    Simulator seed(mesh,
                   makeRouting({.name = "negative-first",
                                .minimal = false}),
                   traffic, config);
    const SimResult a = ft.run();
    const SimResult b = seed.run();

    EXPECT_GT(a.packetsFinished, 0u);
    EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
    EXPECT_EQ(a.packetsFinished, b.packetsFinished);
    EXPECT_EQ(a.packetsUnfinished, b.packetsUnfinished);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.generatedLoad, b.generatedLoad);
    EXPECT_EQ(a.acceptedFlitsPerUsec, b.acceptedFlitsPerUsec);
    EXPECT_EQ(a.avgTotalLatencyUs, b.avgTotalLatencyUs);
    EXPECT_EQ(a.avgNetworkLatencyUs, b.avgNetworkLatencyUs);
    EXPECT_EQ(a.avgHops, b.avgHops);
    EXPECT_EQ(a.p99TotalLatencyUs, b.p99TotalLatencyUs);
    EXPECT_EQ(a.packetsDropped, 0u);
    EXPECT_EQ(a.packetsUnreachable, 0u);
}

TEST(FaultSim, FaultedLoadRunDeliversEveryReachablePacket)
{
    // Acceptance shape of the fault experiments: with k random link
    // faults, a sustainable-load run finishes every packet whose
    // destination the relation can still serve; the rest are
    // flagged, never silently dropped.
    const Mesh mesh(6, 6);
    const FaultSet faults = FaultSet::randomLinks(mesh, 2, 5);
    SimConfig config;
    config.load = 0.02;
    config.warmupCycles = 500;
    config.measureCycles = 2000;
    config.drainCycles = 20000;
    config.seed = 3;
    config.faults = faults;
    config.faultCycle = 0;

    Simulator sim(mesh,
                  makeRouting({.name = "negative-first-ft",
                               .fault_set = faults}),
                  makeTraffic("uniform", mesh), config);
    const SimResult r = sim.run();

    EXPECT_GT(r.packetsFinished, 0u);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.packetsUnfinished, 0u);
    EXPECT_EQ(r.packetsDropped, 0u);
}

TEST(FaultSim, FaultObliviousTrafficStallsHonestly)
{
    // A fault-oblivious relation run against faults never routes
    // into dead hardware: its doomed packets just stall behind the
    // dead link and the network does not drain.
    const Mesh mesh(4, 4);
    const FaultSet faults = isolateCorner(mesh);
    SimConfig config = scriptedConfig();
    config.faults = faults;
    config.faultCycle = 0;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr,
                  config);

    sim.injectMessage(mesh.nodeOf({3, 0}), mesh.nodeOf({0, 0}), 4);
    EXPECT_FALSE(sim.runUntilIdle(500));
    EXPECT_EQ(sim.packetsDelivered(), 0u);
    // Not flagged (the oblivious relation believes it can route)
    // and not dropped (no flit ever enters dead hardware).
    EXPECT_EQ(sim.packetsUnreachable(), 0u);
    EXPECT_EQ(sim.packetsDropped(), 0u);
    EXPECT_EQ(sim.flitsDropped(), 0u);
}

TEST(FaultSimDeath, PureVcRoutingCannotTakeFaults)
{
    const Torus torus(std::vector<int>{4, 4});
    FaultSet faults;
    faults.failLink(torus, 0, Direction::positive(0));
    SimConfig config = scriptedConfig();
    config.faults = faults;
    EXPECT_DEATH(Simulator(torus,
                           makeVcRouting({.name = "dateline"}),
                           nullptr, config),
                 "single-channel");
}

} // namespace
} // namespace turnnet
