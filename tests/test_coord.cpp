/**
 * @file
 * Tests for mixed-radix coordinate arithmetic.
 */

#include <gtest/gtest.h>

#include "turnnet/topology/coord.hpp"

namespace turnnet {
namespace {

TEST(Shape, CountsNodes)
{
    EXPECT_EQ(Shape({4, 4}).numNodes(), 16);
    EXPECT_EQ(Shape({2, 3, 5}).numNodes(), 30);
    EXPECT_EQ(Shape({2, 2, 2, 2, 2, 2, 2, 2}).numNodes(), 256);
}

TEST(Shape, RoundTripsAllNodes)
{
    const Shape shape({3, 4, 5});
    for (NodeId n = 0; n < shape.numNodes(); ++n) {
        const Coord c = shape.coordOf(n);
        EXPECT_EQ(shape.nodeOf(c), n);
    }
}

TEST(Shape, DimensionZeroIsLeastSignificant)
{
    const Shape shape({4, 4});
    EXPECT_EQ(shape.coordOf(1), (Coord{1, 0}));
    EXPECT_EQ(shape.coordOf(4), (Coord{0, 1}));
    EXPECT_EQ(shape.coordOf(5), (Coord{1, 1}));
    EXPECT_EQ(shape.nodeOf({3, 2}), 11);
}

TEST(Shape, HypercubeNodeIdsAreBitPatterns)
{
    const Shape shape({2, 2, 2});
    // Node 5 = binary 101: bit 0 and bit 2 set.
    EXPECT_EQ(shape.coordOf(5), (Coord{1, 0, 1}));
    EXPECT_EQ(shape.nodeOf({0, 1, 1}), 6);
}

TEST(Shape, InBounds)
{
    const Shape shape({3, 3});
    EXPECT_TRUE(shape.inBounds({0, 0}));
    EXPECT_TRUE(shape.inBounds({2, 2}));
    EXPECT_FALSE(shape.inBounds({3, 0}));
    EXPECT_FALSE(shape.inBounds({0, -1}));
    EXPECT_FALSE(shape.inBounds({0}));
    EXPECT_FALSE(shape.inBounds({0, 0, 0}));
}

TEST(Shape, CoordToString)
{
    const Shape shape({4, 4});
    EXPECT_EQ(shape.coordToString({3, 1}), "(3,1)");
}

TEST(Shape, AccessorsMatchConstruction)
{
    const Shape shape({6, 2, 9});
    EXPECT_EQ(shape.numDims(), 3);
    EXPECT_EQ(shape.radix(0), 6);
    EXPECT_EQ(shape.radix(2), 9);
    EXPECT_EQ(shape.radices(), (std::vector<int>{6, 2, 9}));
}

TEST(ShapeDeath, RejectsTinyRadix)
{
    EXPECT_DEATH(Shape({4, 1}), "at least 2");
}

TEST(ShapeDeath, RejectsOutOfRangeNode)
{
    const Shape shape({2, 2});
    EXPECT_DEATH(shape.coordOf(4), "out of range");
}

TEST(ShapeDeath, RejectsOutOfBoundsCoord)
{
    const Shape shape({2, 2});
    EXPECT_DEATH(shape.nodeOf({2, 0}), "out of bounds");
}

} // namespace
} // namespace turnnet
