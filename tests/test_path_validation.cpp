/**
 * @file
 * End-to-end path validation: record the channel sequence every
 * simulated packet actually takes and replay it against the routing
 * relation — each hop must have been a permitted candidate given
 * the previous hop's direction, and minimal algorithms' paths must
 * be shortest. This closes the loop between the router
 * implementation and the routing relations: the simulator cannot
 * take a turn the algorithm prohibits.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/hypercube.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

/** Replay a recorded channel path against the relation. */
void
validatePath(const Topology &topo, const RoutingFunction &routing,
             const PacketInfo &info,
             const std::vector<ChannelId> &path)
{
    ASSERT_FALSE(path.empty());
    NodeId at = info.src;
    Direction in_dir = Direction::local();
    for (const ChannelId ch_id : path) {
        const Channel &ch = topo.channel(ch_id);
        ASSERT_EQ(ch.src, at) << "path is not connected";
        const DirectionSet permitted =
            routing.route(topo, at, info.dest, in_dir);
        EXPECT_TRUE(permitted.contains(ch.dir))
            << routing.name() << ": hop " << ch.dir.toString()
            << " at node " << at << " toward " << info.dest
            << " was not permitted (arrived "
            << in_dir.toString() << ")";
        at = ch.dst;
        in_dir = ch.dir;
    }
    EXPECT_EQ(at, info.dest);
    if (routing.isMinimal()) {
        EXPECT_EQ(static_cast<int>(path.size()),
                  topo.distance(info.src, info.dest));
    }
}

class PathValidation
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PathValidation, EverySimulatedHopIsPermitted)
{
    const Mesh mesh(5, 5);
    const RoutingPtr routing = makeRouting({.name = GetParam(), .dims = 2});

    SimConfig config;
    config.load = 0.0;
    config.recordPaths = true;
    config.watchdogCycles = 50000;
    Simulator sim(mesh, routing, nullptr, config);

    int validated = 0;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        validatePath(mesh, *routing, info, sim.pathOf(info.id));
        ++validated;
    };

    // A crossing mix of packets to create real contention (and
    // therefore real adaptive choices), plus an all-pairs sprinkle.
    for (int i = 0; i < 5; ++i) {
        sim.injectMessage(mesh.nodeOf({0, i}), mesh.nodeOf({4, i}),
                          30);
        sim.injectMessage(mesh.nodeOf({4 - i, 4}),
                          mesh.nodeOf({i, 0}), 30);
    }
    for (NodeId s = 0; s < mesh.numNodes(); s += 2) {
        for (NodeId d = 0; d < mesh.numNodes(); d += 3) {
            if (s != d)
                sim.injectMessage(s, d, 5);
        }
    }
    ASSERT_TRUE(sim.runUntilIdle(100000));
    EXPECT_GT(validated, 100);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, PathValidation,
    ::testing::Values("xy", "west-first", "north-last",
                      "negative-first", "odd-even",
                      "fully-adaptive"),
    [](const auto &test_info) {
        std::string name = test_info.param;
        for (char &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

TEST(PathValidationStress, RandomTrafficUnderLoad)
{
    // With generated traffic at moderate load, adaptive choices are
    // exercised heavily; every delivered path must still replay.
    const Mesh mesh(6, 6);
    const RoutingPtr routing = makeRouting({.name = "west-first"});
    SimConfig config;
    config.load = 0.15;
    config.lengths = MessageLengthMix::fixed(20);
    config.recordPaths = true;
    config.warmupCycles = 0;
    config.measureCycles = 3000;
    config.drainCycles = 5000;
    config.seed = 13;
    Simulator sim(mesh, routing, makeTraffic("uniform", mesh),
                  config);
    int validated = 0;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        validatePath(mesh, *routing, info, sim.pathOf(info.id));
        ++validated;
    };
    sim.run();
    EXPECT_GT(validated, 200);
}

TEST(PathValidationCube, PcubeOnTheHypercube)
{
    const Hypercube cube(4);
    const RoutingPtr routing = makeRouting({.name = "p-cube", .dims = 4});
    SimConfig config;
    config.load = 0.0;
    config.recordPaths = true;
    config.watchdogCycles = 50000;
    Simulator sim(cube, routing, nullptr, config);
    int validated = 0;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        validatePath(cube, *routing, info, sim.pathOf(info.id));
        ++validated;
    };
    for (NodeId s = 0; s < cube.numNodes(); ++s) {
        for (NodeId d = 0; d < cube.numNodes(); ++d) {
            if (s != d)
                sim.injectMessage(s, d, 6);
        }
    }
    ASSERT_TRUE(sim.runUntilIdle(100000));
    EXPECT_EQ(validated, 16 * 15);
}

TEST(PathRecording, RequiresTheConfigFlag)
{
    const Mesh mesh(3, 3);
    SimConfig config;
    Simulator sim(mesh, makeRouting({.name = "xy"}), nullptr, config);
    EXPECT_DEATH(sim.pathOf(1), "recordPaths");
}

} // namespace
} // namespace turnnet
