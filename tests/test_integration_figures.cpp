/**
 * @file
 * Integration tests: miniature versions of the paper's figure
 * experiments must reproduce the qualitative claims — partially
 * adaptive routing beats nonadaptive routing on the adversarial
 * permutations, and everyone behaves at low uniform load.
 */

#include <gtest/gtest.h>

#include "turnnet/harness/figures.hpp"

namespace turnnet {
namespace {

SimConfig
quickBase()
{
    SimConfig base;
    base.warmupCycles = 1500;
    base.measureCycles = 6000;
    base.drainCycles = 6000;
    base.seed = 7;
    return base;
}

TEST(FigureSpecs, AllFourAreWellFormed)
{
    for (const char *id : {"fig13", "fig14", "fig15", "fig16"}) {
        const FigureSpec spec = figureSpec(id);
        EXPECT_EQ(spec.id, id);
        EXPECT_EQ(spec.algorithms.size(), 4u);
        EXPECT_FALSE(spec.loads.empty());
        EXPECT_FALSE(spec.paperClaim.empty());
        // The spec's topology and traffic must construct.
        const auto topo = makeTopology(spec.topology);
        EXPECT_NE(topo, nullptr);
        makeTraffic(spec.traffic, *topo);
    }
}

TEST(FigureSpecs, QuickeningShrinksTheRun)
{
    const FigureSpec full = figureSpec("fig13");
    const FigureSpec quick = quickened(full);
    EXPECT_EQ(quick.topology, "mesh:8x8");
    EXPECT_EQ(quick.loads.size(), 3u);
    EXPECT_EQ(quickened(figureSpec("fig15")).topology, "cube:6");
}

TEST(MakeTopology, ParsesSpecs)
{
    EXPECT_EQ(makeTopology("mesh:16x16")->numNodes(), 256);
    EXPECT_EQ(makeTopology("cube:8")->numNodes(), 256);
    EXPECT_EQ(makeTopology("torus:4x4")->numNodes(), 16);
    EXPECT_EQ(makeTopology("mesh:4x3x2")->numDims(), 3);
    // The registry grammar passes straight through.
    EXPECT_EQ(makeTopology("mesh(16x16)")->numNodes(), 256);
    EXPECT_EQ(makeTopology("dragonfly(4,2,2)")->numNodes(), 36);
    EXPECT_EQ(makeTopology("fat-tree(2,3)")->numEndpoints(), 8);
}

TEST(MakeTopologyDeath, RejectsBadSpecs)
{
    EXPECT_DEATH(makeTopology("grid"),
                 "neither the registry grammar");
    EXPECT_DEATH(makeTopology("mesh:0x4"), "malformed arguments");
    EXPECT_DEATH(makeTopology("blob:4"),
                 "unknown topology family");
}

TEST(Fig13Quick, LowLoadLatenciesAreSimilarAcrossAlgorithms)
{
    // "At low throughputs, the algorithms perform about the same."
    FigureSpec spec = quickened(figureSpec("fig13"));
    spec.loads = {0.01};
    const auto sweeps = runFigure(spec, quickBase(), false);
    const double base_latency =
        sweeps[0][0].result.avgTotalLatencyUs;
    for (const auto &sweep : sweeps) {
        EXPECT_TRUE(sweep[0].result.sustainable);
        EXPECT_NEAR(sweep[0].result.avgTotalLatencyUs, base_latency,
                    base_latency * 0.25);
    }
}

TEST(Fig13Quick, HopCountsMatchUniformPathLengths)
{
    // Minimal routing: measured hops equal the mean distance (about
    // 3.94 sampled for uniform traffic without self-pairs in an
    // 8x8 mesh; the paper reports 10.61 at 16x16).
    FigureSpec spec = quickened(figureSpec("fig13"));
    spec.loads = {0.02};
    const auto sweeps = runFigure(spec, quickBase(), false);
    for (const auto &sweep : sweeps)
        EXPECT_NEAR(sweep[0].result.avgHops, 16.0 / 3.0, 0.25);
}

TEST(Fig14Quick, AdaptiveAlgorithmsSustainMoreTransposeTraffic)
{
    // The headline of Figure 14: on matrix-transpose traffic,
    // adaptive algorithms sustain clearly more throughput than xy.
    // (Negative-first is NOT asserted: on a transpose every pair
    // sits in a mixed quadrant, so minimal NF has exactly one path
    // per pair and our substrate does not reproduce the paper's NF
    // advantage — see EXPERIMENTS.md.)
    FigureSpec spec = quickened(figureSpec("fig14"));
    spec.loads = {0.10, 0.14, 0.18, 0.22};
    // Saturation detection needs a longer window than the other
    // quick tests, and single runs misjudge queue growth near the
    // knee (the verdict can flip with the seed), so each point
    // pools three replicates: a pooled point only counts as
    // sustainable when every replicate is.
    SimConfig base = quickBase();
    base.warmupCycles = 2000;
    base.measureCycles = 10000;
    base.drainCycles = 10000;
    SweepOptions sweep_opts;
    sweep_opts.replicates = 3;
    const auto sweeps = runFigure(spec, base, false, sweep_opts);
    const double xy_peak = maxSustainableThroughput(sweeps[0]);
    const double wf_peak = maxSustainableThroughput(sweeps[1]);
    const double nl_peak = maxSustainableThroughput(sweeps[2]);
    ASSERT_GT(xy_peak, 0.0);
    EXPECT_GT(wf_peak, xy_peak * 1.15);
    EXPECT_GT(nl_peak, xy_peak * 1.15);
}

TEST(Fig14Quick, WestFirstAndNorthLastCoincideOnTranspose)
{
    // On transpose pairs the west-first and north-last relations
    // are literally identical (one triangle gets the single forced
    // path, the other full adaptivity), so with common seeds the
    // simulations agree exactly.
    FigureSpec spec = quickened(figureSpec("fig14"));
    spec.loads = {0.10, 0.20};
    const auto sweeps = runFigure(spec, quickBase(), false);
    for (std::size_t i = 0; i < spec.loads.size(); ++i) {
        EXPECT_DOUBLE_EQ(
            sweeps[1][i].result.acceptedFlitsPerUsec,
            sweeps[2][i].result.acceptedFlitsPerUsec);
        EXPECT_DOUBLE_EQ(sweeps[1][i].result.avgTotalLatencyUs,
                         sweeps[2][i].result.avgTotalLatencyUs);
    }
}

TEST(Fig16Quick, ReverseFlipPunishesEcube)
{
    // The headline of Figure 16: partially adaptive algorithms
    // sustain several times e-cube's reverse-flip throughput.
    FigureSpec spec = quickened(figureSpec("fig16"));
    spec.loads = {0.05, 0.10, 0.20, 0.30, 0.45, 0.60};
    const auto sweeps = runFigure(spec, quickBase(), false);
    const double ecube_peak = maxSustainableThroughput(sweeps[0]);
    const double abonf_peak = maxSustainableThroughput(sweeps[1]);
    ASSERT_GT(ecube_peak, 0.0);
    EXPECT_GT(abonf_peak, ecube_peak * 1.8);
}

TEST(Fig15Quick, TransposeCubeFavorsAdaptivity)
{
    FigureSpec spec = quickened(figureSpec("fig15"));
    spec.loads = {0.08, 0.12, 0.16, 0.20, 0.30};
    // cube:6 has no transpose-cube mapping trouble (even dims).
    const auto sweeps = runFigure(spec, quickBase(), false);
    const double ecube_peak = maxSustainableThroughput(sweeps[0]);
    ASSERT_GT(ecube_peak, 0.0);
    // At least one partially adaptive algorithm beats e-cube.
    const double best_adaptive = std::max(
        {maxSustainableThroughput(sweeps[1]),
         maxSustainableThroughput(sweeps[2]),
         maxSustainableThroughput(sweeps[3])});
    EXPECT_GT(best_adaptive, ecube_peak * 1.2);
}

} // namespace
} // namespace turnnet
