/**
 * @file
 * Golden end-to-end fixtures: small deterministic experiments whose
 * machine-readable JSON exports are committed under tests/golden/
 * and compared byte-for-byte on every run. Any change to routing
 * decisions, RNG consumption, counter accounting, or JSON rendering
 * shows up as a fixture diff — the point is to make silent behavior
 * drift loud, on top of the differential oracle (which only proves
 * the two engines agree with each other).
 *
 * Recording: run with TURNNET_REGEN_GOLDEN=1 in the environment to
 * rewrite the fixtures in the source tree, then inspect the diff
 * like any other code change. The fixture experiments deliberately
 * avoid the bench-record export (wall-clock seconds) — everything
 * in these documents is a deterministic function of the
 * configuration.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "turnnet/harness/analyze_report.hpp"
#include "turnnet/harness/bench_report.hpp"
#include "turnnet/harness/fault_sweep.hpp"
#include "turnnet/harness/sweep.hpp"
#include "turnnet/network/engine.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/trace/counters.hpp"
#include "turnnet/traffic/pattern.hpp"
#include "turnnet/verify/analyze.hpp"
#include "turnnet/verify/certify.hpp"
#include "turnnet/workload/tracegen.hpp"

namespace turnnet {
namespace {

std::string
goldenPath(const std::string &name)
{
    return std::string(TURNNET_GOLDEN_DIR) + "/" + name;
}

bool
regenRequested()
{
    const char *v = std::getenv("TURNNET_REGEN_GOLDEN");
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}

/** Compare @p rendered with the committed fixture, or rewrite the
 *  fixture when TURNNET_REGEN_GOLDEN is set. */
void
expectMatchesGolden(const std::string &name,
                    const std::string &rendered)
{
    const std::string path = goldenPath(name);
    if (regenRequested()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << rendered;
        out.close();
        ASSERT_TRUE(out.good()) << "short write to " << path;
        std::cout << "[  GOLDEN  ] recorded " << path << "\n";
        return;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden fixture " << path
        << " — record it with TURNNET_REGEN_GOLDEN=1";
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), rendered)
        << "fixture " << name << " drifted; if the change is "
        << "intended, re-record with TURNNET_REGEN_GOLDEN=1 and "
        << "review the diff";
}

/** Short, fully deterministic schedule shared by every fixture.
 *  The sharded engine runs with a fixed 3-shard team (an uneven
 *  split of the 16-node fixture meshes) so the fixture bytes do not
 *  depend on the host's core count. */
SimConfig
fixtureConfig(SimEngine engine = SimEngine::Fast)
{
    SimConfig config;
    config.warmupCycles = 200;
    config.measureCycles = 800;
    config.drainCycles = 600;
    config.seed = 21;
    config.engine = engine;
    if (engine == SimEngine::Sharded)
        config.shards = 3;
    return config;
}

/** The four-way engine matrix: every fixture document must render
 *  byte-identically whichever cycle-loop engine produced it, so the
 *  committed fixture doubles as a cross-engine oracle. */
constexpr SimEngine kEngines[] = {SimEngine::Reference,
                                  SimEngine::Fast, SimEngine::Batch,
                                  SimEngine::Sharded};

TEST(Golden, CountersExport)
{
    const Mesh mesh(4, 4);
    const TrafficPtr traffic = makeTraffic("uniform", mesh);
    SweepOptions opts;
    opts.collectCounters = true;
    const std::vector<double> loads = {0.05, 0.15};

    for (const SimEngine engine : kEngines) {
        SCOPED_TRACE(EngineRegistry::instance().at(engine).name);
        opts.engine = engine;
        opts.shards = fixtureConfig(engine).shards;
        std::vector<CountersExportEntry> entries;
        for (const char *alg : {"xy", "west-first"}) {
            const auto sweep = runLoadSweep(
                mesh, makeRouting({.name = alg}), traffic, loads,
                fixtureConfig(engine), opts);
            appendCounterEntries(entries, alg, mesh.name(),
                                 "uniform", sweep);
        }
        expectMatchesGolden("counters.json",
                            countersJson(entries));
    }
}

TEST(Golden, FaultSweepExport)
{
    const Mesh mesh(4, 4);
    const TrafficPtr traffic = makeTraffic("uniform", mesh);
    SweepOptions opts;
    opts.faultCounts = {0, 2};
    opts.replicates = 2;
    opts.faultSeed = 5;
    opts.faultCycle = 150;

    for (const SimEngine engine : kEngines) {
        SCOPED_TRACE(EngineRegistry::instance().at(engine).name);
        opts.engine = engine;
        opts.shards = fixtureConfig(engine).shards;
        SimConfig base = fixtureConfig(engine);
        base.load = 0.1;
        const auto sweep = runFaultSweep(mesh, "negative-first-ft",
                                         traffic, base, opts);
        expectMatchesGolden(
            "fault_sweep.json",
            faultSweepJson("negative-first-ft", mesh, sweep));
    }
}

TEST(Golden, ChannelHeatExport)
{
    const Mesh mesh(4, 4);
    const TrafficPtr traffic = makeTraffic("transpose", mesh);
    SweepOptions opts;
    opts.collectCounters = true;
    const std::vector<double> loads = {0.15};

    for (const SimEngine engine : kEngines) {
        SCOPED_TRACE(EngineRegistry::instance().at(engine).name);
        opts.engine = engine;
        opts.shards = fixtureConfig(engine).shards;
        std::vector<ChannelHeatEntry> entries;
        for (const char *alg : {"xy", "negative-first"}) {
            const auto sweep = runLoadSweep(
                mesh, makeRouting({.name = alg}), traffic, loads,
                fixtureConfig(engine), opts);
            ASSERT_NE(sweep.front().counters, nullptr);
            entries.push_back({alg, sweep.front().counters});
        }
        expectMatchesGolden(
            "channel_heat.json",
            channelHeatJson(mesh, "transpose", 0.15, entries));
    }
}

TEST(Golden, TraceWorkloadFixture)
{
    // The synthesized periodic ring stencil is pinned byte for byte:
    // any drift in the synthesizer's record ordering, dependency
    // edges, or JSONL rendering shows up as a fixture diff. 8 ranks
    // in a ring, 4 iterations, 2 halos per rank per iteration = 64
    // records.
    const TraceWorkloadPtr trace =
        makeStencilTrace({.nx = 8,
                          .ny = 1,
                          .periodic = true,
                          .iterations = 4,
                          .messageFlits = 6});
    ASSERT_EQ(trace->records().size(), 64u);
    expectMatchesGolden("stencil64.trace.jsonl", trace->toJsonl());

    // The committed fixture parses back to the identical trace, so
    // the canned file is usable as a --workload trace:<file> input.
    if (!regenRequested()) {
        std::ifstream in(goldenPath("stencil64.trace.jsonl"),
                         std::ios::binary);
        ASSERT_TRUE(in.good());
        std::ostringstream buf;
        buf << in.rdbuf();
        const TraceWorkload::ParseOutcome outcome =
            TraceWorkload::parse(buf.str());
        ASSERT_TRUE(outcome.ok) << outcome.error;
        EXPECT_EQ(outcome.trace->toJsonl(), trace->toJsonl());
    }
}

TEST(Golden, TraceBenchExport)
{
    // Replay makespans land in one turnnet.trace_bench/1 document
    // covering the whole (algorithm, engine) matrix; pinning it
    // certifies both cross-engine bit-identity (an algorithm's four
    // rows must agree) and the makespans themselves against drift.
    const Mesh mesh(4, 4);
    const TraceWorkloadPtr trace =
        makeStencilTrace({.nx = 4, .ny = 4, .iterations = 2});
    std::vector<TraceBenchEntry> entries;
    for (const char *alg : {"xy", "west-first", "negative-first"}) {
        for (const SimEngine engine : kEngines) {
            SCOPED_TRACE(
                std::string(alg) + " on " +
                EngineRegistry::instance().at(engine).name);
            SimConfig config;
            config.traceWorkload = trace;
            config.load = 0.0;
            config.warmupCycles = 0;
            config.measureCycles = 20000;
            config.drainCycles = 0;
            config.seed = 21;
            config.engine = engine;
            if (engine == SimEngine::Sharded)
                config.shards = 3;
            Simulator sim(mesh, makeRouting({.name = alg}), nullptr,
                          config);
            const SimResult result = sim.run();
            ASSERT_TRUE(result.replayComplete);
            TraceBenchEntry entry;
            entry.algorithm = alg;
            entry.engine =
                EngineRegistry::instance().at(engine).name;
            entry.makespanCycles = result.makespanCycles;
            entry.complete = result.replayComplete;
            entry.packetsDelivered = sim.packetsDelivered();
            entry.packetsDropped = sim.packetsDropped();
            entry.packetsUnreachable = sim.packetsUnreachable();
            entries.push_back(entry);
        }
    }
    expectMatchesGolden(
        "trace_bench.json",
        traceBenchJson(trace->name(), mesh.name(),
                       trace->records().size(), trace->totalFlits(),
                       entries));
}

TEST(Golden, AnalyzeExport)
{
    // The static path-space analysis is likewise RNG-free: the
    // refinement walk, the load propagation, and the hotspot
    // ranking are deterministic functions of the registries. The
    // fixture pins a figure-scale mesh case (with its adversary and
    // the refuted negative control) plus a hierarchical VC case, so
    // drift in the legal path space, the policy split, or the
    // report rendering is a byte diff.
    const std::vector<RefinementCase> refine = {
        {"mesh(8x8)", "west-first", "straight-first", true},
        {"mesh(8x8)", "west-first", "unsafe-escape", false},
    };
    const std::vector<LoadCase> load = {
        {"mesh(8x8)", "west-first", "lowest-dim", "uniform"},
        {"mesh(8x8)", "west-first", "lowest-dim", "adversarial"},
        {"dragonfly(4,2,2)", "dragonfly-ugal", "lowest-dim",
         "uniform", /*vc=*/true},
    };
    const AnalyzeReport report = runAnalysis(refine, load);
    ASSERT_TRUE(report.allPassed());
    expectMatchesGolden("analyze.json", analyzeJson(report));
}

TEST(Golden, CertifyExport)
{
    // The whole default certification sweep is a deterministic
    // function of the registry and the topologies — no RNG, no
    // simulation — so the full report doubles as a fixture: any
    // drift in routing relations, CDG construction, numbering
    // synthesis, or witness extraction shows up as a diff here.
    expectMatchesGolden(
        "certify.json",
        runCertification(defaultCertifyCases()).toJson());
}

} // namespace
} // namespace turnnet
