/**
 * @file
 * Schema validation for every machine-readable turnnet.* document
 * the repo emits: each report must parse as strict JSON and declare
 * the schema version its emitter documents, and its required fields
 * must be present with the right shapes. Run as a group with
 * `ctest -L schema`.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "turnnet/common/json.hpp"
#include "turnnet/harness/analyze_report.hpp"
#include "turnnet/harness/bench_report.hpp"
#include "turnnet/harness/fault_sweep.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/trace/counters.hpp"
#include "turnnet/trace/event_trace.hpp"
#include "turnnet/trace/forensics.hpp"
#include "turnnet/traffic/pattern.hpp"
#include "turnnet/verify/analyze.hpp"
#include "turnnet/verify/certify.hpp"
#include "turnnet/workload/tracegen.hpp"

namespace turnnet {
namespace {

/** Parse @p text and require a declared schema of @p schema. */
json::Value
parseWithSchema(const std::string &text, const std::string &schema)
{
    const json::ParseResult parsed = json::parse(text);
    EXPECT_TRUE(parsed.ok) << parsed.error;
    EXPECT_TRUE(parsed.value.isObject());
    const json::Value *declared = parsed.value.find("schema");
    EXPECT_NE(declared, nullptr) << "missing schema field";
    if (declared != nullptr) {
        EXPECT_EQ(declared->asString(), schema);
    }
    return parsed.value;
}

std::shared_ptr<const TraceCounters>
countersFromRun(const Mesh &mesh, const char *alg, double load)
{
    SimConfig config;
    config.warmupCycles = 200;
    config.measureCycles = 1000;
    config.drainCycles = 2000;
    config.load = load;
    config.seed = 5;
    config.trace.counters = true;
    Simulator sim(mesh, makeRouting({.name = alg, .dims = 2}),
                  makeTraffic("uniform", mesh), config);
    sim.run();
    return sim.countersShared();
}

TEST(Schemas, CountersExport)
{
    const Mesh mesh(4, 4);
    std::vector<CountersExportEntry> entries;
    entries.push_back({"west-first", mesh.name(), "uniform", 0.15,
                       countersFromRun(mesh, "west-first", 0.15)});

    const json::Value doc =
        parseWithSchema(countersJson(entries), "turnnet.counters/1");
    const json::Value *list = doc.find("entries");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 1u);
    const json::Value &e = list->items()[0];
    EXPECT_EQ(e.find("algorithm")->asString(), "west-first");
    EXPECT_EQ(e.find("topology")->asString(), mesh.name());
    EXPECT_EQ(e.find("traffic")->asString(), "uniform");
    EXPECT_DOUBLE_EQ(e.find("offered_load")->asNumber(), 0.15);
    EXPECT_GT(e.find("cycles")->asNumber(), 0.0);
    const json::Value *blocked = e.find("blocked");
    ASSERT_NE(blocked, nullptr);
    EXPECT_NE(blocked->find("routing_denied"), nullptr);
    EXPECT_NE(blocked->find("output_busy"), nullptr);
    EXPECT_NE(blocked->find("downstream_full"), nullptr);
    EXPECT_GE(e.find("mean_buffer_occupancy")->asNumber(), 0.0);
    EXPECT_GE(e.find("max_channel_utilization")->asNumber(),
              e.find("mean_channel_utilization")->asNumber());
    ASSERT_NE(e.find("channel_flits"), nullptr);
    EXPECT_EQ(e.find("channel_flits")->size(), mesh.numChannels());
    const json::Value *turns = e.find("turns");
    ASSERT_NE(turns, nullptr);
    EXPECT_GT(turns->size(), 0u); // nonzero pairs only, but traffic ran
    for (const json::Value &t : turns->items()) {
        EXPECT_NE(t.find("from"), nullptr);
        EXPECT_NE(t.find("to"), nullptr);
        EXPECT_GT(t.find("count")->asNumber(), 0.0);
    }
}

TEST(Schemas, ChannelHeat)
{
    const Mesh mesh(4, 4);
    std::vector<ChannelHeatEntry> entries;
    entries.push_back(
        {"xy", countersFromRun(mesh, "xy", 0.2)});
    entries.push_back(
        {"west-first", countersFromRun(mesh, "west-first", 0.2)});

    const json::Value doc = parseWithSchema(
        channelHeatJson(mesh, "uniform", 0.2, entries),
        "turnnet.channel_heat/1");
    EXPECT_EQ(doc.find("topology")->asString(), mesh.name());
    EXPECT_EQ(doc.find("traffic")->asString(), "uniform");
    const json::Value *list = doc.find("entries");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 2u);
    for (const json::Value &e : list->items()) {
        EXPECT_NE(e.find("algorithm"), nullptr);
        EXPECT_GE(e.find("max_utilization")->asNumber(),
                  e.find("mean_utilization")->asNumber());
        EXPECT_GE(e.find("top5_share")->asNumber(), 0.0);
        EXPECT_LE(e.find("top5_share")->asNumber(), 1.0);
        const json::Value *channels = e.find("channels");
        ASSERT_NE(channels, nullptr);
        EXPECT_EQ(channels->size(), mesh.numChannels());
        // Hottest first.
        double prev = 1e18;
        for (const json::Value &ch : channels->items()) {
            const double flits = ch.find("flits")->asNumber();
            EXPECT_LE(flits, prev);
            prev = flits;
            EXPECT_NE(ch.find("src"), nullptr);
            EXPECT_NE(ch.find("dir"), nullptr);
        }
    }
}

TEST(Schemas, EventTraceJsonl)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.warmupCycles = 100;
    config.measureCycles = 400;
    config.drainCycles = 1000;
    config.load = 0.15;
    config.seed = 9;
    config.trace.events = true;
    config.trace.eventCapacity = 256;
    Simulator sim(mesh, makeRouting({.name = "west-first"}),
                  makeTraffic("uniform", mesh), config);
    sim.run();
    ASSERT_NE(sim.trace(), nullptr);

    std::istringstream lines(sim.trace()->toJsonl());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    const json::Value header =
        parseWithSchema(line, "turnnet.trace/1");
    EXPECT_DOUBLE_EQ(header.find("capacity")->asNumber(), 256.0);
    EXPECT_GE(header.find("recorded")->asNumber(),
              header.find("dropped")->asNumber());

    std::size_t events = 0;
    while (std::getline(lines, line)) {
        const json::ParseResult parsed = json::parse(line);
        ASSERT_TRUE(parsed.ok) << parsed.error << ": " << line;
        const json::Value &e = parsed.value;
        EXPECT_GE(e.find("cycle")->asNumber(), 0.0);
        ASSERT_NE(e.find("event"), nullptr);
        const std::string type = e.find("event")->asString();
        EXPECT_TRUE(type == "inject" || type == "route" ||
                    type == "advance" || type == "block" ||
                    type == "deliver" || type == "drop")
            << type;
        EXPECT_NE(e.find("packet"), nullptr);
        EXPECT_NE(e.find("node"), nullptr);
        ASSERT_NE(e.find("channel"), nullptr); // number or null
        ++events;
    }
    EXPECT_EQ(events, sim.trace()->size());
}

TEST(Schemas, DeadlockForensics)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.5;
    config.lengths = MessageLengthMix::fixed(200);
    config.watchdogCycles = 8000;
    config.warmupCycles = 100;
    config.measureCycles = 40000;
    config.drainCycles = 100;
    config.seed = 3;
    Simulator sim(mesh, makeRouting({.name = "fully-adaptive"}),
                  makeTraffic("uniform", mesh), config);
    ASSERT_TRUE(sim.run().deadlocked);
    const DeadlockReport report = collectDeadlockForensics(sim);

    const json::Value doc = parseWithSchema(
        report.toJson(mesh), "turnnet.deadlock_forensics/1");
    for (const json::Value &w : doc.find("worms")->items()) {
        EXPECT_NE(w.find("packet"), nullptr);
        EXPECT_NE(w.find("node_coord"), nullptr);
        EXPECT_TRUE(w.find("held")->isArray());
        EXPECT_TRUE(w.find("wanted")->isArray());
    }
    for (const json::Value &c : doc.find("wait_cycle")->items()) {
        EXPECT_NE(c.find("channel"), nullptr);
        EXPECT_NE(c.find("src"), nullptr);
        EXPECT_NE(c.find("dir"), nullptr);
        EXPECT_NE(c.find("packet"), nullptr);
    }
}

TEST(Schemas, BenchSweepReport)
{
    SweepBenchEntry entry;
    entry.figure = "fig13";
    entry.topology = "mesh(16x16)";
    entry.jobs = 4;
    entry.replicates = 2;
    entry.simulations = 28;
    entry.wallSeconds = 1.5;
    entry.serialWallSeconds = 4.5;
    entry.serialCompared = true;
    entry.bitIdenticalToSerial = true;

    const json::Value doc = parseWithSchema(
        sweepBenchJson({entry}), "turnnet.bench_sweep/1");
    const json::Value *list = doc.find("entries");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 1u);
    const json::Value &e = list->items()[0];
    EXPECT_EQ(e.find("figure")->asString(), "fig13");
    EXPECT_DOUBLE_EQ(e.find("jobs")->asNumber(), 4.0);
    EXPECT_TRUE(e.find("bit_identical_to_serial")->asBool());
}

TEST(Schemas, HierBenchReport)
{
    HierBenchEntry entry;
    entry.topology = "dragonfly(4,2,2)";
    entry.algorithm = "dragonfly-min";
    entry.maxSustainable = 12.5;
    entry.points.push_back(
        HierBenchPoint{0.05, 4.1, 0.31, 1.62, false, true});
    entry.points.push_back(
        HierBenchPoint{0.40, 12.5, 1.20, 1.70, false, false});

    const json::Value doc = parseWithSchema(
        hierBenchJson("uniform", {entry}), "turnnet.hier_bench/1");
    EXPECT_EQ(doc.find("traffic")->asString(), "uniform");
    const json::Value *list = doc.find("entries");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 1u);
    const json::Value &e = list->items()[0];
    EXPECT_EQ(e.find("topology")->asString(), "dragonfly(4,2,2)");
    EXPECT_EQ(e.find("algorithm")->asString(), "dragonfly-min");
    EXPECT_DOUBLE_EQ(e.find("max_sustainable")->asNumber(), 12.5);
    const json::Value *points = e.find("points");
    ASSERT_NE(points, nullptr);
    ASSERT_EQ(points->size(), 2u);
    for (const json::Value &p : points->items()) {
        EXPECT_NE(p.find("offered"), nullptr);
        EXPECT_NE(p.find("accepted"), nullptr);
        EXPECT_NE(p.find("latency_us"), nullptr);
        EXPECT_NE(p.find("hops"), nullptr);
        EXPECT_FALSE(p.find("deadlocked")->asBool());
    }
    EXPECT_TRUE(points->items()[0].find("sustainable")->asBool());
    EXPECT_FALSE(points->items()[1].find("sustainable")->asBool());
}

TEST(Schemas, TraceWorkloadJsonl)
{
    const TraceWorkloadPtr trace =
        makeStencilTrace({.nx = 4, .ny = 4, .iterations = 2});
    std::istringstream lines(trace->toJsonl());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    const json::Value header =
        parseWithSchema(line, "turnnet.trace_workload/1");
    EXPECT_EQ(header.find("name")->asString(), trace->name());
    EXPECT_DOUBLE_EQ(header.find("endpoints")->asNumber(), 16.0);
    EXPECT_DOUBLE_EQ(header.find("records")->asNumber(),
                     static_cast<double>(trace->records().size()));

    std::size_t records = 0;
    while (std::getline(lines, line)) {
        const json::ParseResult parsed = json::parse(line);
        ASSERT_TRUE(parsed.ok) << parsed.error << ": " << line;
        const json::Value &r = parsed.value;
        ASSERT_NE(r.find("id"), nullptr);
        EXPECT_GE(r.find("src")->asNumber(), 0.0);
        EXPECT_LT(r.find("src")->asNumber(), 16.0);
        EXPECT_GE(r.find("dst")->asNumber(), 0.0);
        EXPECT_LT(r.find("dst")->asNumber(), 16.0);
        EXPECT_GE(r.find("size")->asNumber(), 1.0);
        ASSERT_NE(r.find("deps"), nullptr);
        EXPECT_TRUE(r.find("deps")->isArray());
        ++records;
    }
    EXPECT_EQ(records, trace->records().size());

    // The serialization is itself a valid trace document.
    const TraceWorkload::ParseOutcome roundtrip =
        TraceWorkload::parse(trace->toJsonl());
    ASSERT_TRUE(roundtrip.ok) << roundtrip.error;
    EXPECT_EQ(roundtrip.trace->records().size(),
              trace->records().size());
}

TEST(Schemas, TraceBenchReport)
{
    std::vector<TraceBenchEntry> entries;
    entries.push_back(
        TraceBenchEntry{"west-first", "fast", 812, true, 448, 0, 0});
    entries.push_back(
        TraceBenchEntry{"xy", "sharded/2", 20000, false, 410, 6, 32});

    const json::Value doc = parseWithSchema(
        traceBenchJson("stencil(8x8,iters=4)", "mesh(8x8)", 448,
                       3584, entries),
        "turnnet.trace_bench/1");
    EXPECT_EQ(doc.find("trace")->asString(), "stencil(8x8,iters=4)");
    EXPECT_EQ(doc.find("topology")->asString(), "mesh(8x8)");
    EXPECT_DOUBLE_EQ(doc.find("records")->asNumber(), 448.0);
    EXPECT_DOUBLE_EQ(doc.find("flits")->asNumber(), 3584.0);
    const json::Value *list = doc.find("entries");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 2u);
    const json::Value &e = list->items()[0];
    EXPECT_EQ(e.find("algorithm")->asString(), "west-first");
    EXPECT_EQ(e.find("engine")->asString(), "fast");
    EXPECT_DOUBLE_EQ(e.find("makespan_cycles")->asNumber(), 812.0);
    EXPECT_TRUE(e.find("complete")->asBool());
    EXPECT_DOUBLE_EQ(e.find("packets_delivered")->asNumber(), 448.0);
    EXPECT_DOUBLE_EQ(e.find("packets_dropped")->asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(e.find("packets_unreachable")->asNumber(), 0.0);
    const json::Value &capped = list->items()[1];
    EXPECT_FALSE(capped.find("complete")->asBool());
    EXPECT_DOUBLE_EQ(capped.find("packets_unreachable")->asNumber(),
                     32.0);
}

TEST(Schemas, FaultSweepReport)
{
    const Mesh mesh(4, 4);
    SimConfig base;
    base.warmupCycles = 200;
    base.measureCycles = 800;
    base.drainCycles = 1500;
    base.load = 0.1;
    base.seed = 2;
    SweepOptions opts;
    opts.faultCounts = {0, 1};
    const auto sweep =
        runFaultSweep(mesh, "negative-first-ft",
                      makeTraffic("uniform", mesh), base, opts);
    ASSERT_EQ(sweep.size(), 2u);

    const json::Value doc = parseWithSchema(
        faultSweepJson("negative-first-ft", mesh, sweep),
        "turnnet.fault_sweep/1");
    EXPECT_EQ(doc.find("algorithm")->asString(),
              "negative-first-ft");
    const json::Value *list = doc.find("entries");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 2u);
    for (const json::Value &e : list->items()) {
        EXPECT_NE(e.find("fault_count"), nullptr);
        EXPECT_NE(e.find("deadlock_free"), nullptr);
        EXPECT_NE(e.find("packets_finished"), nullptr);
        EXPECT_NE(e.find("accepted_flits_per_usec"), nullptr);
    }
}

TEST(Schemas, CertifyReport)
{
    // A slice of the sweep with one of each verdict: a certified
    // algorithm with every check applicable, a VC scheme, and the
    // expected rejection (whose witness array must be populated).
    std::vector<CertifyCase> cases;
    for (const CertifyCase &c : defaultCertifyCases()) {
        if (c.topology != "mesh(4x4)")
            continue;
        if (c.algorithm == "west-first" ||
            c.algorithm == "double-y" ||
            c.algorithm == "fully-adaptive")
            cases.push_back(c);
    }
    ASSERT_EQ(cases.size(), 3u);
    const CertifyReport report = runCertification(cases);

    const json::Value doc =
        parseWithSchema(report.toJson(), "turnnet.certify/1");
    EXPECT_TRUE(doc.find("all_passed")->asBool());
    EXPECT_EQ(doc.find("num_cases")->asNumber(), 3.0);
    EXPECT_EQ(doc.find("num_passed")->asNumber(), 3.0);

    const json::Value *list = doc.find("cases");
    ASSERT_NE(list, nullptr);
    ASSERT_EQ(list->size(), 3u);
    for (const json::Value &e : list->items()) {
        ASSERT_NE(e.find("topology"), nullptr);
        ASSERT_NE(e.find("algorithm"), nullptr);
        ASSERT_NE(e.find("vcs"), nullptr);
        ASSERT_NE(e.find("deadlock_free"), nullptr);
        ASSERT_NE(e.find("numbering_verified"), nullptr);
        ASSERT_NE(e.find("num_vertices"), nullptr);
        ASSERT_NE(e.find("num_edges"), nullptr);
        ASSERT_NE(e.find("turn_soundness"), nullptr);
        ASSERT_NE(e.find("progress"), nullptr);
        ASSERT_NE(e.find("witness"), nullptr);
        EXPECT_TRUE(e.find("witness")->isArray());
        EXPECT_TRUE(e.find("pass")->asBool());

        const std::string &alg = e.find("algorithm")->asString();
        if (alg == "west-first") {
            EXPECT_EQ(e.find("turn_soundness")->asString(), "sound");
            EXPECT_EQ(e.find("progress")->asString(), "ok");
            EXPECT_EQ(e.find("vcs")->asNumber(), 1.0);
        } else if (alg == "double-y") {
            EXPECT_EQ(e.find("turn_soundness")->asString(), "n/a");
            EXPECT_EQ(e.find("vcs")->asNumber(), 2.0);
        } else {
            EXPECT_FALSE(e.find("deadlock_free")->asBool());
            ASSERT_GT(e.find("witness")->size(), 0u);
            const json::Value &hop = e.find("witness")->items()[0];
            EXPECT_NE(hop.find("channel"), nullptr);
            EXPECT_NE(hop.find("vc"), nullptr);
            EXPECT_NE(hop.find("src"), nullptr);
            EXPECT_NE(hop.find("dir"), nullptr);
        }
    }
}

TEST(Schemas, AnalyzeReport)
{
    // A slice of the analyzer sweep with one of each outcome shape:
    // a refinement pass (null witness), the refuted negative
    // control (populated witness object), a load case with an
    // attached measured-validation block, and one without.
    std::vector<RefinementCase> refine = {
        {"mesh(4x4)", "west-first", "straight-first", true},
        {"mesh(4x4)", "xy", "unsafe-escape", false},
    };
    std::vector<LoadCase> load = {
        {"mesh(4x4)", "xy", "lowest-dim", "uniform"},
        {"mesh(4x4)", "west-first", "random", "transpose"},
    };
    const AnalyzeReport report = runAnalysis(refine, load);
    ASSERT_TRUE(report.allPassed());

    const Mesh mesh(4, 4);
    std::map<std::size_t, LoadValidation> measured;
    measured[0] = validatePredictionAgainstCounters(
        report.load[0].prediction,
        *countersFromRun(mesh, "xy", 0.05), 0.05);

    const json::Value doc = parseWithSchema(
        analyzeJson(report, measured), "turnnet.analyze/1");
    EXPECT_TRUE(doc.find("all_passed")->asBool());
    EXPECT_EQ(doc.find("num_refinement_cases")->asNumber(), 2.0);
    EXPECT_EQ(doc.find("num_refinement_passed")->asNumber(), 2.0);
    EXPECT_EQ(doc.find("num_load_cases")->asNumber(), 2.0);
    EXPECT_EQ(doc.find("num_load_passed")->asNumber(), 2.0);

    const json::Value *rlist = doc.find("refinement");
    ASSERT_NE(rlist, nullptr);
    ASSERT_EQ(rlist->size(), 2u);
    for (const json::Value &e : rlist->items()) {
        ASSERT_NE(e.find("topology"), nullptr);
        ASSERT_NE(e.find("algorithm"), nullptr);
        ASSERT_NE(e.find("policy"), nullptr);
        ASSERT_NE(e.find("expect_refines"), nullptr);
        ASSERT_NE(e.find("refines"), nullptr);
        ASSERT_NE(e.find("states_checked"), nullptr);
        ASSERT_NE(e.find("contexts_checked"), nullptr);
        ASSERT_NE(e.find("witness"), nullptr);
        EXPECT_TRUE(e.find("pass")->asBool());

        if (e.find("policy")->asString() == "unsafe-escape") {
            const json::Value &w = *e.find("witness");
            ASSERT_TRUE(w.isObject());
            EXPECT_NE(w.find("node"), nullptr);
            EXPECT_NE(w.find("header"), nullptr);
            EXPECT_NE(w.find("in_dir"), nullptr);
            EXPECT_NE(w.find("chosen"), nullptr);
            EXPECT_TRUE(w.find("legal")->isArray());
            EXPECT_NE(w.find("context"), nullptr);
            EXPECT_NE(w.find("text"), nullptr);
        } else {
            EXPECT_TRUE(e.find("witness")->isNull());
        }
    }

    const json::Value *llist = doc.find("load");
    ASSERT_NE(llist, nullptr);
    ASSERT_EQ(llist->size(), 2u);
    for (const json::Value &e : llist->items()) {
        ASSERT_NE(e.find("topology"), nullptr);
        ASSERT_NE(e.find("algorithm"), nullptr);
        ASSERT_NE(e.find("policy"), nullptr);
        ASSERT_NE(e.find("traffic"), nullptr);
        ASSERT_NE(e.find("vcs"), nullptr);
        ASSERT_NE(e.find("num_flows"), nullptr);
        ASSERT_NE(e.find("sampled_matrix"), nullptr);
        ASSERT_NE(e.find("offered_mass"), nullptr);
        ASSERT_NE(e.find("residual_mass"), nullptr);
        ASSERT_NE(e.find("max_load"), nullptr);
        ASSERT_NE(e.find("mean_load"), nullptr);
        ASSERT_NE(e.find("saturation_load"), nullptr);
        ASSERT_TRUE(e.find("hotspots")->isArray());
        ASSERT_GT(e.find("hotspots")->size(), 0u);
        const json::Value &spot = e.find("hotspots")->items()[0];
        EXPECT_NE(spot.find("channel"), nullptr);
        EXPECT_NE(spot.find("src"), nullptr);
        EXPECT_NE(spot.find("dir"), nullptr);
        EXPECT_NE(spot.find("load"), nullptr);
        ASSERT_TRUE(e.find("channel_load")->isArray());
        EXPECT_EQ(e.find("channel_load")->size(),
                  static_cast<std::size_t>(mesh.numChannels()));
        EXPECT_TRUE(e.find("pass")->asBool());
    }

    // The measured block rides case 0 only.
    const json::Value &with = llist->items()[0];
    ASSERT_TRUE(with.find("measured")->isObject());
    EXPECT_NE(with.find("measured")->find("offered_load"), nullptr);
    EXPECT_NE(with.find("measured")->find("cycles"), nullptr);
    EXPECT_NE(with.find("measured")->find("channels_compared"),
              nullptr);
    EXPECT_NE(with.find("measured")->find("max_rel_error"), nullptr);
    EXPECT_NE(with.find("measured")->find("mean_rel_error"),
              nullptr);
    EXPECT_NE(with.find("measured")->find("tolerance"), nullptr);
    EXPECT_NE(with.find("measured")->find("within_tolerance"),
              nullptr);
    EXPECT_TRUE(llist->items()[1].find("measured")->isNull());
}

} // namespace
} // namespace turnnet
