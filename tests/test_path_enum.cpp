/**
 * @file
 * Tests for path tracing, choice tracing, and ASCII rendering.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/path_enum.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"

namespace turnnet {
namespace {

TEST(TracePath, XyFollowsTheDimensionOrder)
{
    const Mesh mesh(4, 4);
    const RoutingPtr xy = makeRouting({.name = "xy"});
    const auto path = tracePath(mesh, *xy, mesh.nodeOf({0, 0}),
                                mesh.nodeOf({2, 2}));
    const std::vector<NodeId> expected{
        mesh.nodeOf({0, 0}), mesh.nodeOf({1, 0}),
        mesh.nodeOf({2, 0}), mesh.nodeOf({2, 1}),
        mesh.nodeOf({2, 2})};
    EXPECT_EQ(path, expected);
}

TEST(TracePath, SelectorControlsAdaptiveChoices)
{
    const Mesh mesh(4, 4);
    const RoutingPtr nf = makeRouting({.name = "negative-first"});
    // Northeast destination: NF is fully adaptive; force north
    // whenever possible.
    const auto prefer_north = [](NodeId, DirectionSet c) {
        return c.contains(Direction::positive(1))
                   ? Direction::positive(1)
                   : c.first();
    };
    const auto path =
        tracePath(mesh, *nf, mesh.nodeOf({0, 0}),
                  mesh.nodeOf({2, 2}), prefer_north);
    EXPECT_EQ(path[1], mesh.nodeOf({0, 1}));
    EXPECT_EQ(path[2], mesh.nodeOf({0, 2}));
    EXPECT_EQ(path.size(), 5u);
}

TEST(TraceChoices, CountsMinimalAndExtraOptions)
{
    const Mesh mesh(6, 6);
    const RoutingPtr wf = makeRouting({.name = "west-first", .dims = 2});
    const RoutingPtr wf_nm = makeRouting({.name = "west-first", .dims = 2, .minimal = false});
    // (1,1) -> (3,2): adaptive among east/north.
    const auto rows =
        traceChoices(mesh, *wf, *wf_nm, mesh.nodeOf({1, 1}),
                     mesh.nodeOf({3, 2}), {0, 0, 1});
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].minimalChoices, 2); // east or north
    EXPECT_GE(rows[0].nonminimalExtras, 1); // south detour is legal
    EXPECT_EQ(rows[2].minimalChoices, 1); // only north remains
}

TEST(RenderPath, MarksEndpointsAndArrows)
{
    const Mesh mesh(4, 4);
    const RoutingPtr xy = makeRouting({.name = "xy"});
    const auto path = tracePath(mesh, *xy, mesh.nodeOf({0, 3}),
                                mesh.nodeOf({3, 0}));
    const std::string art = renderPath2D(mesh, path);
    EXPECT_NE(art.find('S'), std::string::npos);
    EXPECT_NE(art.find('D'), std::string::npos);
    EXPECT_NE(art.find("-->"), std::string::npos);
    EXPECT_NE(art.find('v'), std::string::npos);
    // 4 columns of nodes -> 13-character lines, 7 rows.
    EXPECT_EQ(art.find('\n'), 13u);
}

TEST(RenderPath, WestwardAndNorthwardArrows)
{
    const Mesh mesh(3, 3);
    const RoutingPtr xy = makeRouting({.name = "xy"});
    const auto path = tracePath(mesh, *xy, mesh.nodeOf({2, 0}),
                                mesh.nodeOf({0, 2}));
    const std::string art = renderPath2D(mesh, path);
    EXPECT_NE(art.find("<--"), std::string::npos);
    EXPECT_NE(art.find('^'), std::string::npos);
}

TEST(TracePathDeath, SelectorMustPickACandidate)
{
    const Mesh mesh(3, 3);
    const RoutingPtr xy = makeRouting({.name = "xy"});
    const auto bad = [](NodeId, DirectionSet) {
        return Direction::positive(1);
    };
    EXPECT_DEATH(tracePath(mesh, *xy, mesh.nodeOf({0, 0}),
                           mesh.nodeOf({2, 0}), bad),
                 "non-candidate");
}

TEST(TraceChoicesDeath, RejectsIllegalDimensions)
{
    const Mesh mesh(4, 4);
    const RoutingPtr xy = makeRouting({.name = "xy"});
    EXPECT_DEATH(traceChoices(mesh, *xy, *xy, mesh.nodeOf({0, 0}),
                              mesh.nodeOf({2, 0}), {1, 0}),
                 "not a permitted hop");
}

} // namespace
} // namespace turnnet
