/**
 * @file
 * Regression tests for the engine speedup gate
 * (evaluateSpeedupGate in harness/bench_report): the gate must be
 * evaluated over EVERY load point of the sweep. The original
 * bench/engine_speedup gate read only entries.front(), so a
 * dense-regime (high-load) collapse passed as long as the low-load
 * point looked healthy — these tests feed synthetic multi-load
 * sweeps through the gate logic and pin that bug as fixed.
 */

#include <gtest/gtest.h>

#include "turnnet/harness/bench_report.hpp"

namespace turnnet {
namespace {

EngineBenchEntry
entry(double load, const char *engine, double rate)
{
    EngineBenchEntry e;
    e.load = load;
    e.engine = engine;
    e.cyclesPerSec = rate;
    return e;
}

TEST(EngineGate, DenseLoadOnlyRegressionFailsTheGate)
{
    // Low load is spectacular (5.0x), the dense point has collapsed
    // to 1.1x. This is exactly the shape the old front()-only gate
    // waved through.
    const std::vector<EngineBenchEntry> entries = {
        entry(0.01, "reference", 100.0),
        entry(0.01, "fast", 500.0),
        entry(0.20, "reference", 100.0),
        entry(0.20, "fast", 105.0),
        entry(0.20, "batch", 110.0),
    };

    // Pin the old behavior as the bug: the front load point alone
    // clears the threshold, so a front()-only check would pass.
    const double front_speedup = 500.0 / 100.0;
    ASSERT_GE(front_speedup, 1.5);

    const SpeedupGateResult gate =
        evaluateSpeedupGate(entries, 1.5);
    EXPECT_FALSE(gate.pass)
        << "gate must fail on the dense-load regression even "
           "though the first load point passes";
    EXPECT_EQ(gate.loadsEvaluated, 2u);
    EXPECT_DOUBLE_EQ(gate.minSpeedup, 1.1);
    EXPECT_DOUBLE_EQ(gate.minLoad, 0.20);
    EXPECT_EQ(gate.minEngine, "batch");
}

TEST(EngineGate, BestEnginePerLoadCarriesTheSweep)
{
    // The fast engine wins the sparse regime, the batch engine the
    // dense one; neither dominates everywhere but the per-load best
    // clears the bar at every point — the gate must take the max
    // over candidate engines before taking the min over loads.
    const std::vector<EngineBenchEntry> entries = {
        entry(0.01, "reference", 100.0),
        entry(0.01, "fast", 480.0),
        entry(0.01, "batch", 150.0),
        entry(0.20, "reference", 100.0),
        entry(0.20, "fast", 103.0),
        entry(0.20, "batch", 220.0),
    };
    const SpeedupGateResult gate =
        evaluateSpeedupGate(entries, 2.0);
    EXPECT_TRUE(gate.pass);
    EXPECT_EQ(gate.loadsEvaluated, 2u);
    EXPECT_DOUBLE_EQ(gate.minSpeedup, 2.2);
    EXPECT_DOUBLE_EQ(gate.minLoad, 0.20);
    EXPECT_EQ(gate.minEngine, "batch");
}

TEST(EngineGate, EveryLoadPointIsChecked)
{
    // A middle load point below the bar fails the sweep even when
    // both ends pass — the minimum is a true minimum, not an
    // endpoint check in disguise.
    const std::vector<EngineBenchEntry> entries = {
        entry(0.01, "reference", 100.0),
        entry(0.01, "fast", 300.0),
        entry(0.06, "reference", 100.0),
        entry(0.06, "fast", 120.0),
        entry(0.20, "reference", 100.0),
        entry(0.20, "batch", 250.0),
    };
    const SpeedupGateResult gate =
        evaluateSpeedupGate(entries, 1.3);
    EXPECT_FALSE(gate.pass);
    EXPECT_EQ(gate.loadsEvaluated, 3u);
    EXPECT_DOUBLE_EQ(gate.minSpeedup, 1.2);
    EXPECT_DOUBLE_EQ(gate.minLoad, 0.06);
    EXPECT_EQ(gate.minEngine, "fast");
}

TEST(EngineGate, ZeroThresholdDisablesTheGateButStillReports)
{
    const std::vector<EngineBenchEntry> entries = {
        entry(0.20, "reference", 100.0),
        entry(0.20, "batch", 50.0),
    };
    const SpeedupGateResult gate =
        evaluateSpeedupGate(entries, 0.0);
    EXPECT_TRUE(gate.pass);
    EXPECT_EQ(gate.loadsEvaluated, 1u);
    EXPECT_DOUBLE_EQ(gate.minSpeedup, 0.5);
    EXPECT_EQ(gate.minEngine, "batch");
}

TEST(EngineGate, EmptyOrIncomparableSweepFailsAnEnabledGate)
{
    // An enabled gate with nothing to evaluate proves nothing and
    // must not report success.
    const SpeedupGateResult empty = evaluateSpeedupGate({}, 1.3);
    EXPECT_FALSE(empty.pass);
    EXPECT_EQ(empty.loadsEvaluated, 0u);

    // Reference-only entries (no candidate rates) are likewise not
    // comparable load points.
    const SpeedupGateResult ref_only = evaluateSpeedupGate(
        {entry(0.01, "reference", 100.0)}, 1.3);
    EXPECT_FALSE(ref_only.pass);
    EXPECT_EQ(ref_only.loadsEvaluated, 0u);
}

TEST(EngineGate, EntryOrderDoesNotMatter)
{
    // The verdict is a function of the set of entries, not the
    // order the bench happened to emit them in.
    const std::vector<EngineBenchEntry> entries = {
        entry(0.20, "batch", 120.0),
        entry(0.01, "fast", 500.0),
        entry(0.20, "reference", 100.0),
        entry(0.01, "reference", 100.0),
    };
    const SpeedupGateResult gate =
        evaluateSpeedupGate(entries, 1.5);
    EXPECT_FALSE(gate.pass);
    EXPECT_DOUBLE_EQ(gate.minSpeedup, 1.2);
    EXPECT_DOUBLE_EQ(gate.minLoad, 0.20);
}

} // namespace
} // namespace turnnet
