/**
 * @file
 * Tests for the command-line option parser.
 */

#include <gtest/gtest.h>

#include "turnnet/common/cli.hpp"

namespace turnnet {
namespace {

CliOptions
parse(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return CliOptions::parse(static_cast<int>(argv.size()),
                             argv.data());
}

TEST(Cli, SpaceSeparatedValues)
{
    const CliOptions opts = parse({"--size", "16", "--name", "mesh"});
    EXPECT_EQ(opts.getInt("size", 0), 16);
    EXPECT_EQ(opts.getString("name"), "mesh");
}

TEST(Cli, EqualsSeparatedValues)
{
    const CliOptions opts = parse({"--load=0.25", "--alg=xy"});
    EXPECT_DOUBLE_EQ(opts.getDouble("load", 0.0), 0.25);
    EXPECT_EQ(opts.getString("alg"), "xy");
}

TEST(Cli, BareFlagsAreTrue)
{
    const CliOptions opts = parse({"--quick", "--csv"});
    EXPECT_TRUE(opts.getBool("quick", false));
    EXPECT_TRUE(opts.getBool("csv", false));
    EXPECT_FALSE(opts.getBool("missing", false));
    EXPECT_TRUE(opts.getBool("missing", true));
}

TEST(Cli, ExplicitBooleans)
{
    const CliOptions opts = parse({"--a=true", "--b=0", "--c", "yes"});
    EXPECT_TRUE(opts.getBool("a", false));
    EXPECT_FALSE(opts.getBool("b", true));
    EXPECT_TRUE(opts.getBool("c", false));
}

TEST(Cli, DefaultsWhenAbsent)
{
    const CliOptions opts = parse({});
    EXPECT_EQ(opts.getInt("n", 42), 42);
    EXPECT_DOUBLE_EQ(opts.getDouble("x", 2.5), 2.5);
    EXPECT_EQ(opts.getString("s", "dflt"), "dflt");
    EXPECT_FALSE(opts.has("n"));
}

TEST(Cli, ListsSplitOnCommas)
{
    const CliOptions opts = parse({"--loads=0.1,0.2,0.3"});
    const auto list = opts.getList("loads");
    ASSERT_EQ(list.size(), 3u);
    EXPECT_EQ(list[0], "0.1");
    EXPECT_EQ(list[2], "0.3");
}

TEST(Cli, DoubleListParsesStrictly)
{
    const CliOptions opts = parse({"--loads=0.01,0.06,0.20"});
    const auto loads = opts.getDoubleList("loads");
    ASSERT_EQ(loads.size(), 3u);
    EXPECT_DOUBLE_EQ(loads[0], 0.01);
    EXPECT_DOUBLE_EQ(loads[1], 0.06);
    EXPECT_DOUBLE_EQ(loads[2], 0.20);
}

TEST(Cli, DoubleListDefaultsWhenAbsent)
{
    const CliOptions opts = parse({});
    const auto loads = opts.getDoubleList("loads", {0.5, 1.0});
    ASSERT_EQ(loads.size(), 2u);
    EXPECT_DOUBLE_EQ(loads[0], 0.5);
    EXPECT_DOUBLE_EQ(loads[1], 1.0);
}

TEST(CliDeath, DoubleListRejectsGarbage)
{
    // atof would have silently mapped each of these to 0.0 — a load
    // sweep of zeros that "passes" every gate. They must be fatal.
    EXPECT_DEATH(parse({"--loads=0.1,oops,0.3"})
                     .getDoubleList("loads"),
                 "comma-separated numbers");
    EXPECT_DEATH(parse({"--loads=0.1,,0.3"})
                     .getDoubleList("loads"),
                 "comma-separated numbers");
    EXPECT_DEATH(parse({"--loads=0.1x,0.3"})
                     .getDoubleList("loads"),
                 "comma-separated numbers");
}

TEST(Cli, PositionalArgumentsKeptInOrder)
{
    const CliOptions opts = parse({"first", "--k", "v", "second"});
    ASSERT_EQ(opts.positional().size(), 2u);
    EXPECT_EQ(opts.positional()[0], "first");
    EXPECT_EQ(opts.positional()[1], "second");
}

TEST(Cli, NegativeNumbersAsValues)
{
    const CliOptions opts = parse({"--offset=-5"});
    EXPECT_EQ(opts.getInt("offset", 0), -5);
}

TEST(Cli, ProgramNameCaptured)
{
    const CliOptions opts = parse({});
    EXPECT_EQ(opts.program(), "prog");
}

TEST(SplitString, HandlesEmptySegments)
{
    const auto parts = splitString("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

} // namespace
} // namespace turnnet
