/**
 * @file
 * Tests for turns, turn sets, and abstract cycles — the accounting
 * behind Theorems 1 and 6.
 */

#include <gtest/gtest.h>

#include "turnnet/turnmodel/cycles.hpp"
#include "turnnet/turnmodel/prohibition.hpp"
#include "turnnet/turnmodel/turn.hpp"

namespace turnnet {
namespace {

const Direction kWest = Direction::negative(0);
const Direction kEast = Direction::positive(0);
const Direction kSouth = Direction::negative(1);
const Direction kNorth = Direction::positive(1);

TEST(Turn, Classification)
{
    EXPECT_TRUE(Turn(kEast, kNorth).is90Degree());
    EXPECT_FALSE(Turn(kEast, kNorth).is180Degree());
    EXPECT_TRUE(Turn(kEast, kWest).is180Degree());
    EXPECT_FALSE(Turn(kEast, kWest).is90Degree());
    EXPECT_TRUE(Turn(kEast, kEast).isStraight());
    EXPECT_EQ(Turn(kEast, kNorth).toString(), "east->north");
}

TEST(TurnSet, TotalTurnCountIs4nTimesNminus1)
{
    // Section 2: 4n(n-1) 90-degree turns in an n-dimensional mesh.
    EXPECT_EQ(TurnSet::total90Turns(2), 8);
    EXPECT_EQ(TurnSet::total90Turns(3), 24);
    EXPECT_EQ(TurnSet::total90Turns(8), 224);
    for (int n = 2; n <= 8; ++n) {
        const TurnSet all(n, true);
        EXPECT_EQ(all.numAllowed90(), TurnSet::total90Turns(n));
    }
}

TEST(TurnSet, StraightMovesAlwaysAllowed)
{
    const TurnSet none(2, false);
    EXPECT_TRUE(none.allows(Turn(kEast, kEast)));
    EXPECT_TRUE(none.allows(Turn(kSouth, kSouth)));
    EXPECT_FALSE(none.allows(Turn(kEast, kNorth)));
}

TEST(TurnSet, OneEightyTurnsDefaultProhibited)
{
    const TurnSet all(2, true);
    EXPECT_FALSE(all.allows(Turn(kEast, kWest)));
    EXPECT_FALSE(all.allows(Turn(kNorth, kSouth)));
    // Step 6 can incorporate them explicitly.
    TurnSet with_reversal = all;
    with_reversal.allow(Turn(kEast, kWest));
    EXPECT_TRUE(with_reversal.allows(Turn(kEast, kWest)));
}

TEST(TurnSet, ProhibitAndAllowRoundTrip)
{
    TurnSet set(2, true);
    set.prohibit(Turn(kNorth, kWest));
    EXPECT_FALSE(set.allows(Turn(kNorth, kWest)));
    EXPECT_EQ(set.numAllowed90(), 7);
    set.allow(Turn(kNorth, kWest));
    EXPECT_EQ(set.numAllowed90(), 8);
}

TEST(TurnSet, LegalOutputsRespectProhibitions)
{
    const TurnSet wf = westFirstTurns();
    const DirectionSet from_north = wf.legalOutputs(kNorth);
    EXPECT_TRUE(from_north.contains(kNorth));  // straight
    EXPECT_TRUE(from_north.contains(kEast));
    EXPECT_FALSE(from_north.contains(kWest));  // prohibited
    EXPECT_FALSE(from_north.contains(kSouth)); // 180 degrees

    // From the local (injection) direction everything is legal.
    EXPECT_EQ(wf.legalOutputs(Direction::local()).size(), 4);
}

TEST(AbstractCycles, TwoPerPlane)
{
    // n(n-1)/2 planes, two abstract cycles each (Figure 2).
    for (int n = 2; n <= 6; ++n)
        EXPECT_EQ(abstractCycles(n).size(),
                  static_cast<std::size_t>(n * (n - 1)));
}

TEST(AbstractCycles, TurnsChainAroundThePlane)
{
    for (const AbstractCycle &cycle : abstractCycles(3)) {
        for (std::size_t i = 0; i < 4; ++i) {
            const Turn &cur = cycle.turns[i];
            const Turn &next = cycle.turns[(i + 1) % 4];
            EXPECT_TRUE(cur.is90Degree());
            // Each turn ends travelling the direction the next
            // starts from.
            EXPECT_EQ(cur.to, next.from);
        }
    }
}

TEST(AbstractCycles, EachCycleUsesAllFourPlaneDirections)
{
    for (const AbstractCycle &cycle : abstractCycles(4)) {
        DirectionSet dirs;
        for (const Turn &t : cycle.turns)
            dirs.insert(t.from);
        EXPECT_EQ(dirs.size(), 4);
        EXPECT_TRUE(dirs.contains(Direction::positive(cycle.dimA)));
        EXPECT_TRUE(dirs.contains(Direction::negative(cycle.dimA)));
        EXPECT_TRUE(dirs.contains(Direction::positive(cycle.dimB)));
        EXPECT_TRUE(dirs.contains(Direction::negative(cycle.dimB)));
    }
}

TEST(Theorem1, MinimumProhibitedIsAQuarter)
{
    for (int n = 2; n <= 8; ++n) {
        EXPECT_EQ(minimumProhibitedTurns(n), n * (n - 1));
        EXPECT_EQ(4 * minimumProhibitedTurns(n),
                  TurnSet::total90Turns(n));
    }
}

TEST(Theorem6, NamedAlgorithmsProhibitExactlyTheQuota)
{
    // Negative-first, ABONF, and ABOPL prohibit exactly n(n-1)
    // turns — the minimum Theorem 1 requires, making them maximally
    // adaptive.
    for (int n = 2; n <= 8; ++n) {
        const std::size_t quota =
            static_cast<std::size_t>(minimumProhibitedTurns(n));
        EXPECT_EQ(negativeFirstTurns(n).prohibited90().size(), quota);
        EXPECT_EQ(abonfTurns(n).prohibited90().size(), quota);
        EXPECT_EQ(aboplTurns(n).prohibited90().size(), quota);
    }
}

TEST(Theorem6, NamedAlgorithmsBreakEveryAbstractCycle)
{
    for (int n = 2; n <= 6; ++n) {
        EXPECT_TRUE(breaksAllCycles(negativeFirstTurns(n)));
        EXPECT_TRUE(breaksAllCycles(abonfTurns(n)));
        EXPECT_TRUE(breaksAllCycles(aboplTurns(n)));
        EXPECT_TRUE(breaksAllCycles(dimensionOrderTurns(n)));
    }
    EXPECT_TRUE(breaksAllCycles(westFirstTurns()));
    EXPECT_TRUE(breaksAllCycles(northLastTurns()));
}

TEST(TurnSets, DimensionOrderProhibitsHalf)
{
    // xy routing prohibits four of the eight turns (Figure 3):
    // every turn from a higher to a lower dimension.
    EXPECT_EQ(dimensionOrderTurns(2).prohibited90().size(), 4u);
    for (int n = 2; n <= 6; ++n) {
        EXPECT_EQ(static_cast<int>(
                      dimensionOrderTurns(n).prohibited90().size()),
                  TurnSet::total90Turns(n) / 2);
    }
}

TEST(TurnSets, WestFirstProhibitsTurnsToWest)
{
    const TurnSet wf = westFirstTurns();
    const auto prohibited = wf.prohibited90();
    ASSERT_EQ(prohibited.size(), 2u);
    for (const Turn &t : prohibited)
        EXPECT_EQ(t.to, kWest);
}

TEST(TurnSets, NorthLastProhibitsTurnsFromNorth)
{
    const TurnSet nl = northLastTurns();
    const auto prohibited = nl.prohibited90();
    ASSERT_EQ(prohibited.size(), 2u);
    for (const Turn &t : prohibited)
        EXPECT_EQ(t.from, kNorth);
}

TEST(TurnSets, NegativeFirstProhibitsPositiveToNegative)
{
    for (int n = 2; n <= 5; ++n) {
        for (const Turn &t : negativeFirstTurns(n).prohibited90()) {
            EXPECT_TRUE(t.from.isPositive());
            EXPECT_TRUE(t.to.isNegative());
        }
    }
}

TEST(TurnSets, Abonf2DIsWestFirstAndAbopl2DIsNorthLast)
{
    EXPECT_EQ(abonfTurns(2), westFirstTurns());
    EXPECT_EQ(aboplTurns(2), northLastTurns());
}

TEST(TurnSetDeath, CannotProhibitStraight)
{
    TurnSet set(2, true);
    EXPECT_DEATH(set.prohibit(Turn(kEast, kEast)), "straight");
}

} // namespace
} // namespace turnnet
