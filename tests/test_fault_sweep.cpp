/**
 * @file
 * Fault-sweep harness tests: grid shape, deterministic parallel
 * execution, zero-fault equivalence with the plain load sweep, the
 * shared SweepOptions::fromCli parser, and the machine-readable
 * report.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "turnnet/harness/fault_sweep.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

SimConfig
quickConfig()
{
    SimConfig config;
    config.load = 0.03;
    config.warmupCycles = 200;
    config.measureCycles = 1000;
    config.drainCycles = 4000;
    config.seed = 17;
    return config;
}

TEST(SweepOptionsCli, ParsesSharedAndFaultFlags)
{
    const char *argv[] = {"bench",          "--jobs",       "3",
                          "--replicates",   "2",            "--compare-serial",
                          "--bench-json",   "out.json",     "--faults",
                          "0,2,4",          "--fault-seed", "99",
                          "--fault-cycle",  "1000"};
    const CliOptions cli = CliOptions::parse(
        static_cast<int>(std::size(argv)), argv);
    const SweepOptions opts = SweepOptions::fromCli(cli);

    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.replicates, 2u);
    EXPECT_TRUE(opts.compareSerial);
    EXPECT_EQ(opts.benchJson, "out.json");
    EXPECT_EQ(opts.faultCounts,
              (std::vector<unsigned>{0, 2, 4}));
    EXPECT_EQ(opts.faultSeed, 99u);
    EXPECT_EQ(opts.faultCycle, 1000u);
}

TEST(SweepOptionsCli, DefaultsMatchTheSeedBehavior)
{
    const char *argv[] = {"bench"};
    const SweepOptions opts =
        SweepOptions::fromCli(CliOptions::parse(1, argv));
    EXPECT_EQ(opts.jobs, 1u);
    EXPECT_EQ(opts.replicates, 1u);
    EXPECT_FALSE(opts.compareSerial);
    EXPECT_EQ(opts.benchJson, "BENCH_sweep.json");
    EXPECT_TRUE(opts.faultCounts.empty());
    EXPECT_EQ(opts.faultCycle, 0u);
}

TEST(FaultSweep, GridShapeAndDeterministicSeeds)
{
    const Mesh mesh(4, 4);
    SweepOptions opts;
    opts.faultCounts = {0, 2};
    opts.replicates = 2;
    opts.faultSeed = 21;

    const auto sweep =
        runFaultSweep(mesh, "negative-first-ft",
                      makeTraffic("uniform", mesh), quickConfig(),
                      opts);
    ASSERT_EQ(sweep.size(), 4u);
    EXPECT_EQ(sweep[0].faultCount, 0u);
    EXPECT_EQ(sweep[1].faultCount, 0u);
    EXPECT_EQ(sweep[2].faultCount, 2u);
    EXPECT_EQ(sweep[3].faultCount, 2u);
    EXPECT_EQ(sweep[0].replicate, 0u);
    EXPECT_EQ(sweep[1].replicate, 1u);

    // Zero-fault cells carry empty fault sets and a fully reachable
    // analysis; faulted replicates draw distinct sets.
    EXPECT_TRUE(sweep[0].faults.empty());
    EXPECT_TRUE(sweep[0].analysis.fullyReachable());
    EXPECT_EQ(sweep[2].faults.numFailedChannels(), 4u);
    EXPECT_NE(sweep[2].faults, sweep[3].faults);
    // Every surviving CDG is acyclic.
    for (const FaultSweepPoint &cell : sweep)
        EXPECT_TRUE(cell.analysis.deadlockFree());
}

TEST(FaultSweep, ParallelExecutionIsBitIdentical)
{
    const Mesh mesh(4, 4);
    SweepOptions serial;
    serial.faultCounts = {0, 1, 3};
    serial.replicates = 2;
    serial.jobs = 1;
    SweepOptions parallel = serial;
    parallel.jobs = 4;

    const TrafficPtr traffic = makeTraffic("uniform", mesh);
    const auto a = runFaultSweep(mesh, "negative-first-ft", traffic,
                                 quickConfig(), serial);
    const auto b = runFaultSweep(mesh, "negative-first-ft", traffic,
                                 quickConfig(), parallel);
    EXPECT_TRUE(faultSweepsIdentical(a, b));
}

TEST(FaultSweep, ZeroFaultCellMatchesPlainLoadSweep)
{
    // A fault sweep at count 0 runs the identical simulation grid
    // as runLoadSweep over the seed nonminimal algorithm: same seed
    // derivation, same relation. Results must agree bitwise.
    const Mesh mesh(4, 4);
    const SimConfig base = quickConfig();
    const TrafficPtr traffic = makeTraffic("uniform", mesh);

    SweepOptions opts;
    opts.faultCounts = {0};
    const auto cells = runFaultSweep(mesh, "negative-first-ft",
                                     traffic, base, opts);
    ASSERT_EQ(cells.size(), 1u);

    const auto plain = runLoadSweep(
        mesh,
        makeRouting({.name = "negative-first", .minimal = false}),
        traffic, {base.load}, base, SweepOptions{});
    ASSERT_EQ(plain.size(), 1u);

    const SimResult &a = cells[0].result;
    const SimResult &b = plain[0].result;
    EXPECT_GT(a.packetsFinished, 0u);
    EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
    EXPECT_EQ(a.packetsFinished, b.packetsFinished);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.generatedLoad, b.generatedLoad);
    EXPECT_EQ(a.acceptedFlitsPerUsec, b.acceptedFlitsPerUsec);
    EXPECT_EQ(a.avgTotalLatencyUs, b.avgTotalLatencyUs);
    EXPECT_EQ(a.avgHops, b.avgHops);
}

TEST(FaultSweep, JsonReportCarriesTheSchemaAndCells)
{
    const Mesh mesh(4, 4);
    SweepOptions opts;
    opts.faultCounts = {1};
    const auto sweep =
        runFaultSweep(mesh, "negative-first-ft",
                      makeTraffic("uniform", mesh), quickConfig(),
                      opts);

    const std::string doc =
        faultSweepJson("negative-first-ft", mesh, sweep);
    EXPECT_NE(doc.find("\"turnnet.fault_sweep/1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"fault_count\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"deadlock_free\": true"),
              std::string::npos);
    EXPECT_NE(doc.find("\"packets_finished\""), std::string::npos);

    const std::string path = "test_fault_sweep_report.json";
    EXPECT_TRUE(writeFaultSweepJson(path, "negative-first-ft", mesh,
                                    sweep));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

TEST(FaultSweep, TableHasOneRowPerCell)
{
    const Mesh mesh(4, 4);
    SweepOptions opts;
    opts.faultCounts = {0, 1};
    opts.replicates = 2;
    const auto sweep =
        runFaultSweep(mesh, "negative-first-ft",
                      makeTraffic("uniform", mesh), quickConfig(),
                      opts);
    const Table table = faultSweepTable("t", mesh, sweep);
    EXPECT_EQ(table.numRows(), 4u);
}

} // namespace
} // namespace turnnet
