/**
 * @file
 * Simulation tests for virtual channels: the V = 1 path is
 * bit-identical to the plain simulator, dateline routing delivers
 * minimally on tori without wedging, links time-multiplex their
 * VCs at one flit per cycle, and double-y runs a mesh fully
 * adaptively.
 */

#include <gtest/gtest.h>

#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"
#include "turnnet/traffic/pattern.hpp"

namespace turnnet {
namespace {

SimConfig
scriptedConfig()
{
    SimConfig config;
    config.load = 0.0;
    config.watchdogCycles = 50000;
    return config;
}

TEST(VcNetwork, SingleVcPathIsIdenticalToPlainSimulator)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.1;
    config.warmupCycles = 200;
    config.measureCycles = 2000;
    config.drainCycles = 2000;
    config.seed = 21;

    Simulator plain(mesh, makeRouting({.name = "west-first"}),
                    makeTraffic("uniform", mesh), config);
    Simulator adapted(mesh, makeVcRouting({.name = "west-first"}),
                      makeTraffic("uniform", mesh), config);
    const SimResult a = plain.run();
    const SimResult b = adapted.run();
    EXPECT_DOUBLE_EQ(a.avgTotalLatencyUs, b.avgTotalLatencyUs);
    EXPECT_EQ(a.packetsFinished, b.packetsFinished);
    EXPECT_DOUBLE_EQ(a.acceptedFlitsPerUsec,
                     b.acceptedFlitsPerUsec);
}

TEST(VcNetwork, DatelineDeliversMinimallyOnTheTorus)
{
    // The headline capability the turn model cannot match without
    // extra channels: MINIMAL deadlock-free torus routing. Every
    // pair delivers with hops equal to the torus distance.
    const Torus torus(5, 2);
    Simulator sim(torus, makeVcRouting({.name = "dateline"}), nullptr,
                  scriptedConfig());
    int mismatches = 0;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        if (static_cast<int>(info.hops) !=
            torus.distance(info.src, info.dest)) {
            ++mismatches;
        }
    };
    for (NodeId s = 0; s < torus.numNodes(); ++s) {
        for (NodeId d = 0; d < torus.numNodes(); ++d) {
            if (s != d)
                sim.injectMessage(s, d, 4);
        }
    }
    ASSERT_TRUE(sim.runUntilIdle(100000));
    EXPECT_FALSE(sim.deadlockDetected());
    EXPECT_EQ(mismatches, 0);
    EXPECT_EQ(sim.packetsDelivered(),
              static_cast<std::uint64_t>(torus.numNodes()) *
                  (torus.numNodes() - 1));
}

TEST(VcNetwork, LinksTimeMultiplexTheirVirtualChannels)
{
    // Two worms cross the same physical channel (2,0)->(3,0) on
    // different VCs: A (2,0)->(0,0) wraps (VC0), B (1,0)->(3,0)
    // does not (VC1). Sharing the link halves each one's bandwidth:
    // both finish, later than alone but far sooner than serialized
    // behind a full wormhole reservation.
    const Torus torus(4, 2);
    auto run = [&](bool with_contention) {
        Simulator sim(torus, makeVcRouting({.name = "dateline"}), nullptr,
                      scriptedConfig());
        std::vector<Cycle> done;
        sim.onDelivered = [&](const PacketInfo &, Cycle at) {
            done.push_back(at);
        };
        sim.injectMessage(torus.nodeOf({2, 0}),
                          torus.nodeOf({0, 0}), 40);
        if (with_contention) {
            sim.injectMessage(torus.nodeOf({1, 0}),
                              torus.nodeOf({3, 0}), 40);
        }
        EXPECT_TRUE(sim.runUntilIdle(10000));
        Cycle last = 0;
        for (const Cycle c : done)
            last = std::max(last, c);
        return last;
    };
    const Cycle alone = run(false);
    const Cycle shared = run(true);
    EXPECT_GT(shared, alone + 20); // the link really is shared
    EXPECT_LT(shared, 2 * alone + 20); // but not serialized worms
}

TEST(VcNetwork, DatelineSurvivesUniformStress)
{
    const Torus torus(4, 2);
    SimConfig config;
    config.load = 0.4;
    config.lengths = MessageLengthMix::fixed(60);
    config.warmupCycles = 200;
    config.measureCycles = 12000;
    config.drainCycles = 200;
    config.watchdogCycles = 8000;
    config.seed = 3;
    Simulator sim(torus, makeVcRouting({.name = "dateline"}),
                  makeTraffic("uniform", torus), config);
    const SimResult result = sim.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.packetsFinished, 100u);
}

TEST(VcNetwork, DoubleYDeliversEverywhereWithMinimalHops)
{
    const Mesh mesh(5, 5);
    Simulator sim(mesh, makeVcRouting({.name = "double-y"}), nullptr,
                  scriptedConfig());
    int mismatches = 0;
    sim.onDelivered = [&](const PacketInfo &info, Cycle) {
        if (static_cast<int>(info.hops) !=
            mesh.distance(info.src, info.dest)) {
            ++mismatches;
        }
    };
    for (NodeId s = 0; s < mesh.numNodes(); ++s) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            if (s != d)
                sim.injectMessage(s, d, 3);
        }
    }
    ASSERT_TRUE(sim.runUntilIdle(100000));
    EXPECT_EQ(mismatches, 0);
    EXPECT_FALSE(sim.deadlockDetected());
}

TEST(VcNetwork, DoubleYAdaptsAroundABlockedChannel)
{
    // Blocker holds the east channel out of (1,0). Under xy the
    // victim (0,0) -> (2,2) must wait behind it; fully adaptive
    // double-y climbs a column first (on whichever layer its phase
    // dictates) and slips past.
    const Mesh mesh(4, 4);
    auto run = [&](const std::string &alg) {
        Simulator sim(mesh, makeVcRouting({.name = alg}), nullptr,
                      scriptedConfig());
        Cycle victim_done = 0;
        PacketId victim = 0;
        sim.onDelivered = [&](const PacketInfo &info, Cycle at) {
            if (info.id == victim)
                victim_done = at;
        };
        sim.injectMessage(mesh.nodeOf({1, 0}), mesh.nodeOf({2, 0}),
                          80);
        victim = sim.injectMessage(mesh.nodeOf({0, 0}),
                                   mesh.nodeOf({2, 2}), 10);
        EXPECT_TRUE(sim.runUntilIdle(10000));
        return victim_done;
    };
    const Cycle with_xy = run("xy");
    const Cycle with_dy = run("double-y");
    EXPECT_LT(with_dy, 30u);
    EXPECT_GT(with_xy, 60u);
}

TEST(VcNetwork, DoubleYStressSurvives)
{
    const Mesh mesh(4, 4);
    SimConfig config;
    config.load = 0.5;
    config.lengths = MessageLengthMix::fixed(80);
    config.warmupCycles = 200;
    config.measureCycles = 12000;
    config.drainCycles = 200;
    config.watchdogCycles = 8000;
    config.seed = 5;
    Simulator sim(mesh, makeVcRouting({.name = "double-y"}),
                  makeTraffic("uniform", mesh), config);
    const SimResult result = sim.run();
    EXPECT_FALSE(result.deadlocked);
    EXPECT_GT(result.packetsFinished, 100u);
}

} // namespace
} // namespace turnnet
