/**
 * @file
 * Tests for the Section 4.2 torus extensions: negative-first with
 * classified wraparound channels, and the wrap-on-first-hop
 * adapters.
 */

#include <gtest/gtest.h>

#include "turnnet/analysis/path_enum.hpp"
#include "turnnet/routing/negative_first.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/torus_extensions.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/topology/torus.hpp"

namespace turnnet {
namespace {

const Direction kWest = Direction::negative(0);
const Direction kEast = Direction::positive(0);
const Direction kNorth = Direction::positive(1);

TEST(NfTorus, ClassifiesWrapHopsByCoordinateChange)
{
    const Torus torus(4, 2);
    // Positive port at the east edge wraps to coordinate 0: class
    // negative.
    EXPECT_TRUE(NegativeFirstTorus::classNegative(
        torus, torus.nodeOf({3, 1}), kEast));
    // Negative port at the west edge wraps to k-1: class positive.
    EXPECT_FALSE(NegativeFirstTorus::classNegative(
        torus, torus.nodeOf({0, 1}), kWest));
    // Interior hops classify by sign.
    EXPECT_FALSE(NegativeFirstTorus::classNegative(
        torus, torus.nodeOf({1, 1}), kEast));
    EXPECT_TRUE(NegativeFirstTorus::classNegative(
        torus, torus.nodeOf({2, 1}), kWest));
}

TEST(NfTorus, EastEdgeNodeHasTwoWestwardChannels)
{
    // Section 4.2: a node at the east edge has two channels "to the
    // west" — the mesh channel and the wraparound.
    const Torus torus(4, 2);
    const NegativeFirstTorus nf;
    const NodeId src = torus.nodeOf({3, 1});
    const NodeId dst = torus.nodeOf({1, 1});
    const DirectionSet dirs =
        nf.route(torus, src, dst, Direction::local());
    EXPECT_EQ(dirs.size(), 2);
    EXPECT_TRUE(dirs.contains(kWest)); // mesh hop to (2,1)
    EXPECT_TRUE(dirs.contains(kEast)); // wrap hop to (0,1)
}

TEST(NfTorus, InteriorBehavesLikeNegativeFirst)
{
    const Torus torus(5, 2);
    const NegativeFirstTorus nf_torus;
    const NegativeFirst nf;
    const Mesh mesh(5, 2);
    // Away from the edges the candidate sets match plain NF on the
    // equal-sized mesh.
    const NodeId src = torus.nodeOf({3, 1});
    const NodeId dst = torus.nodeOf({1, 0});
    EXPECT_EQ(
        nf_torus.route(torus, src, dst, Direction::local()).mask(),
        nf.route(mesh, mesh.nodeOf({3, 1}), mesh.nodeOf({1, 0}),
                 Direction::local())
            .mask());
}

TEST(NfTorus, PhaseTwoWrapOnlyWhenLandingExactly)
{
    const Torus torus(4, 2);
    const NegativeFirstTorus nf;
    // From (0,1) to (3,1): the wrap through the negative port lands
    // exactly on x = 3, so both the mesh path and the wrap are
    // offered.
    const DirectionSet to_edge = nf.route(
        torus, torus.nodeOf({0, 1}), torus.nodeOf({3, 1}),
        Direction::local());
    EXPECT_TRUE(to_edge.contains(kEast));
    EXPECT_TRUE(to_edge.contains(kWest));
    // From (0,1) to (2,1): wrapping would land at 3 past the
    // destination with no way back: only the mesh hop is offered.
    const DirectionSet past = nf.route(
        torus, torus.nodeOf({0, 1}), torus.nodeOf({2, 1}),
        Direction::local());
    EXPECT_EQ(past.size(), 1);
    EXPECT_TRUE(past.contains(kEast));
}

TEST(NfTorus, TracesTerminateOnOddTori)
{
    const Torus torus(5, 2);
    const NegativeFirstTorus nf;
    for (NodeId s = 0; s < torus.numNodes(); ++s) {
        for (NodeId d = 0; d < torus.numNodes(); ++d) {
            if (s == d)
                continue;
            const auto path = tracePath(torus, nf, s, d);
            EXPECT_EQ(path.back(), d);
        }
    }
}

TEST(FirstHopWrap, WrapOnlyFromInjection)
{
    const Torus torus(5, 2);
    const RoutingPtr routing = makeRouting({.name = "xy-first-hop-wrap", .dims = 2});
    // From (4,0) to (0,0) the eastward wrap is a useful first hop.
    const DirectionSet first = routing->route(
        torus, torus.nodeOf({4, 0}), torus.nodeOf({0, 0}),
        Direction::local());
    EXPECT_TRUE(first.contains(kEast));
    // Mid-route (arriving westbound at the edge) the wrap is
    // forbidden even though it would shorten the path; only the
    // mesh channel west remains.
    const DirectionSet mid = routing->route(
        torus, torus.nodeOf({4, 0}), torus.nodeOf({0, 0}), kWest);
    EXPECT_FALSE(mid.contains(kEast));
    EXPECT_TRUE(mid.contains(kWest));
}

TEST(FirstHopWrap, InnerTurnRulesStillApply)
{
    const Torus torus(5, 2);
    const RoutingPtr wf = makeRouting({.name = "nf-first-hop-wrap", .dims = 2});
    // Arriving northbound (positive phase for NF), a westward mesh
    // hop is never offered.
    for (NodeId d = 0; d < torus.numNodes(); ++d) {
        const NodeId at = torus.nodeOf({2, 1});
        if (d == at)
            continue;
        EXPECT_FALSE(
            wf->route(torus, at, d, kNorth).contains(kWest));
    }
}

TEST(FirstHopWrap, AllPairsTerminate)
{
    const Torus torus(4, 2);
    for (const char *alg : {"xy-first-hop-wrap",
                            "nf-first-hop-wrap"}) {
        const RoutingPtr routing = makeRouting({.name = alg, .dims = 2});
        for (NodeId s = 0; s < torus.numNodes(); ++s) {
            for (NodeId d = 0; d < torus.numNodes(); ++d) {
                if (s == d)
                    continue;
                const auto path = tracePath(torus, *routing, s, d);
                EXPECT_EQ(path.back(), d) << alg;
            }
        }
    }
}

TEST(FirstHopWrap, UsesWrapToShortenPaths)
{
    // Crossing the whole ring: the wrap makes the route one hop.
    const Torus torus(6, 2);
    const RoutingPtr routing = makeRouting({.name = "xy-first-hop-wrap", .dims = 2});
    const auto prefer_wrap = [](NodeId, DirectionSet c) {
        return c.contains(kEast) ? kEast : c.first();
    };
    const auto path =
        tracePath(torus, *routing, torus.nodeOf({5, 0}),
                  torus.nodeOf({0, 0}), prefer_wrap);
    EXPECT_EQ(path.size(), 2u);
}

} // namespace
} // namespace turnnet
