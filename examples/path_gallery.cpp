/**
 * @file
 * ASCII renditions of the example-path figures (5b, 9b, 10b): how
 * west-first, north-last, and negative-first route across an 8x8
 * mesh, including the adaptive spread of permitted shortest paths.
 */

#include <cstdio>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/analysis/path_enum.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"

using namespace turnnet;

namespace {

void
showPath(const Mesh &mesh, const RoutingFunction &routing,
         Coord src, Coord dst, const DirectionSelector &selector,
         const char *note)
{
    const NodeId s = mesh.nodeOf(src);
    const NodeId d = mesh.nodeOf(dst);
    const auto path = tracePath(mesh, routing, s, d, selector);
    std::printf("%s: %s -> %s, %zu hops, %s permits %.0f shortest "
                "path(s)\n",
                routing.name().c_str(),
                mesh.shape().coordToString(src).c_str(),
                mesh.shape().coordToString(dst).c_str(),
                path.size() - 1, routing.name().c_str(),
                countPaths(mesh, routing, s, d));
    std::printf("(%s)\n%s\n", note,
                renderPath2D(mesh, path).c_str());
}

Direction
zigzag(NodeId node, DirectionSet candidates)
{
    // Alternate preference to make the adaptive freedom visible.
    if (node % 2 == 0)
        return candidates.first();
    Direction last = candidates.first();
    candidates.forEach([&](Direction d) { last = d; });
    return last;
}

} // namespace

int
main()
{
    const Mesh mesh(8, 8);

    std::printf("==== Figure 5b: west-first ====\n\n");
    const RoutingPtr wf = makeRouting({.name = "west-first"});
    showPath(mesh, *wf, {6, 1}, {1, 5}, lowestDimSelector,
             "westward destination: forced west leg, then north");
    showPath(mesh, *wf, {1, 6}, {6, 1}, zigzag,
             "eastward destination: fully adaptive staircase");

    std::printf("==== Figure 9b: north-last ====\n\n");
    const RoutingPtr nl = makeRouting({.name = "north-last"});
    showPath(mesh, *nl, {1, 1}, {6, 6}, lowestDimSelector,
             "north deferred: east first, north as the last leg");
    showPath(mesh, *nl, {6, 6}, {1, 1}, zigzag,
             "southwest destination: fully adaptive staircase");

    std::printf("==== Figure 10b: negative-first ====\n\n");
    const RoutingPtr nf = makeRouting({.name = "negative-first"});
    showPath(mesh, *nf, {6, 6}, {1, 1}, zigzag,
             "both deltas negative: fully adaptive staircase");
    showPath(mesh, *nf, {6, 1}, {1, 6}, lowestDimSelector,
             "mixed quadrant: the single permitted path (west "
             "leg, then north leg)");

    std::printf("==== Degree of adaptiveness (Section 3.4) ====\n");
    const NodeId a = mesh.nodeOf({2, 2});
    const NodeId b = mesh.nodeOf({5, 6});
    std::printf("From (2,2) to (5,6): S_f = %.0f, S_wf = %.0f, "
                "S_nl = %.0f, S_nf = %.0f\n",
                pathsFullyAdaptive(mesh, a, b),
                pathsWestFirst(mesh, a, b),
                pathsNorthLast(mesh, a, b),
                pathsNegativeFirst(mesh, a, b));
    const NodeId c = mesh.nodeOf({5, 2});
    const NodeId d = mesh.nodeOf({2, 6});
    std::printf("From (5,2) to (2,6): S_f = %.0f, S_wf = %.0f, "
                "S_nl = %.0f, S_nf = %.0f\n",
                pathsFullyAdaptive(mesh, c, d),
                pathsWestFirst(mesh, c, d),
                pathsNorthLast(mesh, c, d),
                pathsNegativeFirst(mesh, c, d));
    return 0;
}
