/**
 * @file
 * Quickstart: build a mesh, pick a turn-model routing algorithm,
 * prove it deadlock free, and simulate some traffic.
 *
 *   ./quickstart [--size 8] [--alg west-first] [--load 0.08]
 *                [--traffic uniform] [--seed 1]
 */

#include <cstdio>

#include "turnnet/analysis/cdg.hpp"
#include "turnnet/common/cli.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/traffic/pattern.hpp"

using namespace turnnet;

int
main(int argc, char **argv)
{
    const CliOptions opts = CliOptions::parse(argc, argv);
    const int side = static_cast<int>(opts.getInt("size", 8));
    const std::string alg = opts.getString("alg", "west-first");
    const double load = opts.getDouble("load", 0.08);
    const std::string pattern =
        opts.getString("traffic", "uniform");

    // 1. A topology: an 8x8 mesh by default.
    const Mesh mesh(side, side);
    std::printf("topology : %s (%d nodes, %d channels)\n",
                mesh.name().c_str(), mesh.numNodes(),
                mesh.numChannels());

    // 2. A routing algorithm from the registry.
    const RoutingPtr routing = makeRouting({.name = alg, .dims = mesh.numDims()});
    routing->checkTopology(mesh);
    std::printf("routing  : %s (%s)\n", routing->name().c_str(),
                routing->isMinimal() ? "minimal" : "nonminimal");

    // 3. Deadlock freedom is checkable, not just claimed: build the
    //    exact channel dependency graph and look for cycles.
    const CdgReport cdg = analyzeDependencies(mesh, *routing);
    std::printf("CDG      : %zu dependency edges, %s\n",
                cdg.numEdges,
                cdg.acyclic ? "acyclic (deadlock free)"
                            : "CYCLIC (would deadlock!)");

    // 4. Simulate the paper's workload: negative-exponential
    //    arrivals, 10-or-200-flit messages, single-flit buffers,
    //    FCFS input selection, lowest-dimension output selection.
    SimConfig config;
    config.load = load;
    config.warmupCycles = 2000;
    config.measureCycles = 10000;
    config.drainCycles = 10000;
    config.seed =
        static_cast<std::uint64_t>(opts.getInt("seed", 1));

    Simulator sim(mesh, routing, makeTraffic(pattern, mesh),
                  config);
    const SimResult result = sim.run();

    std::printf("traffic  : %s at %.3f flits/node/cycle offered\n",
                result.traffic.c_str(), result.offeredLoad);
    std::printf("result   : %s\n", result.summary().c_str());
    std::printf("           accepted %.1f flits/us, "
                "latency %.2f us (p99 %.2f us), %.2f hops avg\n",
                result.acceptedFlitsPerUsec,
                result.avgTotalLatencyUs, result.p99TotalLatencyUs,
                result.avgHops);
    std::printf("           %llu packets measured, %llu finished, "
                "%s\n",
                static_cast<unsigned long long>(
                    result.packetsMeasured),
                static_cast<unsigned long long>(
                    result.packetsFinished),
                result.sustainable ? "queues bounded"
                                   : "saturated");
    return 0;
}
