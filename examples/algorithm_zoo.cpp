/**
 * @file
 * The whole zoo on one page: run every registered mesh algorithm
 * (plus the VC schemes) through an identical workload and print a
 * one-line scorecard each — deadlock verdict, adaptiveness, and
 * simulated performance. A fast way to see the design space the
 * turn model sits in.
 *
 *   ./algorithm_zoo [--size 8] [--traffic transpose] [--load 0.12]
 */

#include <cstdio>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/analysis/cdg.hpp"
#include "turnnet/analysis/vc_cdg.hpp"
#include "turnnet/common/cli.hpp"
#include "turnnet/common/csv.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/routing/vc_routing.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/traffic/pattern.hpp"

using namespace turnnet;

int
main(int argc, char **argv)
{
    const CliOptions opts = CliOptions::parse(argc, argv);
    const int side = static_cast<int>(opts.getInt("size", 8));
    const std::string pattern =
        opts.getString("traffic", "transpose");
    const double load = opts.getDouble("load", 0.12);

    const Mesh mesh(side, side);
    const TrafficPtr traffic = makeTraffic(pattern, mesh);

    Table table("Algorithm zoo: " + pattern + " traffic at " +
                std::to_string(load) + " flits/node/cycle on " +
                mesh.name());
    table.setHeader({"algorithm", "VCs", "deadlock-free",
                     "mean S_p/S_f", "accepted (fl/us)",
                     "latency (us)", "max chan util"});

    const char *const algorithms[] = {
        "xy",       "west-first",     "north-last",
        "odd-even", "negative-first", "fully-adaptive",
        "double-y"};

    for (const char *alg : algorithms) {
        const VcRoutingPtr routing = makeVcRouting({.name = alg, .dims = 2});
        const bool safe = isVcDeadlockFree(mesh, *routing);

        // Adaptiveness (single-VC algorithms only; double-y is
        // fully adaptive by construction).
        std::string ratio = "1.0000 (full)";
        if (const auto *adapter =
                dynamic_cast<const SingleVcAdapter *>(
                    routing.get())) {
            if (adapter->inner().isMinimal()) {
                const auto s = summarizeAdaptiveness(
                    mesh, adapter->inner());
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.4f",
                              s.meanRatio);
                ratio = buf;
            }
        }

        SimConfig config;
        config.load = load;
        config.warmupCycles = 1500;
        config.measureCycles = 8000;
        config.drainCycles = 6000;
        config.seed = static_cast<std::uint64_t>(
            opts.getInt("seed", 1));
        // The deadlock-prone baseline needs a watchdog tight
        // enough to report within the run.
        config.watchdogCycles = safe ? 100000 : 4000;

        Simulator sim(mesh, routing, traffic, config);
        const SimResult r = sim.run();

        table.beginRow();
        table.cell(alg);
        table.cell(static_cast<long long>(routing->numVcs()));
        table.cell(std::string(safe ? "yes" : "NO (cyclic CDG)"));
        table.cell(ratio);
        table.cell(r.acceptedFlitsPerUsec, 1);
        table.cell(r.avgTotalLatencyUs, 2);
        table.cell(r.maxChannelUtilization, 3);
    }
    table.print();
    std::printf("\nS_p/S_f is the paper's degree-of-adaptiveness "
                "measure (Section 3.4), averaged over all pairs; "
                "'full' marks fully adaptive schemes. The cyclic-CDG "
                "baseline may wedge mid-run — that is the point.\n");
    return 0;
}
