/**
 * @file
 * Walks through Section 5: p-cube routing in a binary 10-cube,
 * reproducing the paper's worked example hop by hop with the
 * Figure 11/12 bitwise masks spelled out.
 */

#include <cstdio>

#include "turnnet/analysis/adaptiveness.hpp"
#include "turnnet/routing/pcube.hpp"
#include "turnnet/topology/hypercube.hpp"

using namespace turnnet;

int
main()
{
    const Hypercube cube(10);
    const NodeId src = 0b1011010100;
    const NodeId dst = 0b0010111001;

    std::printf("p-cube routing from S = %s to D = %s\n",
                cube.addressString(src).c_str(),
                cube.addressString(dst).c_str());
    const int h = Hypercube::hamming(src, dst);
    const int h1 = __builtin_popcount(
        static_cast<unsigned>(src & ~dst));
    const int h0 = __builtin_popcount(
        static_cast<unsigned>(~src & dst & 0x3FF));
    std::printf("h = %d differing bits: h1 = %d go 1->0 (phase 1), "
                "h0 = %d go 0->1 (phase 2)\n\n",
                h, h1, h0);

    const PCube pcube;
    NodeId current = src;
    Direction in_dir = Direction::local();
    const int taken_dims[] = {2, 9, 6, 5, 0, 3};

    for (const int dim : taken_dims) {
        const auto c = static_cast<std::uint32_t>(current);
        const auto d = static_cast<std::uint32_t>(dst);
        const std::uint32_t mask = pcubeMinimalMask(c, d, 10);
        const std::uint32_t extra =
            pcubeNonminimalExtraMask(c, d, 10);
        const bool phase1 = (c & ~d & 0x3FF) != 0;

        std::printf("at %s  phase %d  R = ",
                    cube.addressString(current).c_str(),
                    phase1 ? 1 : 2);
        for (int i = 9; i >= 0; --i)
            std::printf("%d", (mask >> i) & 1);
        std::printf("  -> %d choice(s)", __builtin_popcount(mask));
        if (extra)
            std::printf(" (+%d nonminimal)",
                        __builtin_popcount(extra));
        std::printf(", take dimension %d\n", dim);

        const DirectionSet offered =
            pcube.route(cube, current, dst, in_dir);
        Direction taken;
        offered.forEach([&](Direction o) {
            if (o.dim() == dim)
                taken = o;
        });
        current = cube.neighbor(current, taken);
        in_dir = taken;
    }
    std::printf("at %s  destination reached\n\n",
                cube.addressString(current).c_str());

    std::printf("S_p-cube = h1! * h0! = %.0f of S_f = h! = %.0f "
                "shortest paths (ratio %.4f)\n",
                pcubePathCount(src, dst, 10),
                pathsFullyAdaptive(cube, src, dst),
                pcubePathCount(src, dst, 10) /
                    pathsFullyAdaptive(cube, src, dst));
    std::printf("(exhaustive enumeration agrees: %.0f)\n",
                countPaths(cube, pcube, src, dst));
    return 0;
}
