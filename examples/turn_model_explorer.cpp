/**
 * @file
 * A guided tour of the turn model itself (Section 2): enumerate the
 * turns and abstract cycles of a 2D mesh, show what each named
 * algorithm prohibits, and demonstrate — by exact channel-dependency
 * analysis — why breaking both abstract cycles is necessary but not
 * sufficient (Figure 4).
 */

#include <cstdio>

#include "turnnet/analysis/cdg.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/turnmodel/cycles.hpp"
#include "turnnet/turnmodel/prohibition.hpp"
#include "turnnet/turnmodel/turn_routing.hpp"

using namespace turnnet;

namespace {

void
showTurnSet(const char *name, const TurnSet &turns,
            const Mesh &mesh)
{
    const TurnSetRouting routing(name, turns, true);
    const CdgReport report = analyzeDependencies(mesh, routing);
    std::printf("  %-16s %s -> %s\n", name,
                turns.toString().c_str(),
                report.acyclic ? "deadlock free" : "DEADLOCKS");
}

} // namespace

int
main()
{
    std::printf("== Step 1-3: directions, turns, cycles ==\n");
    std::printf("A 2D mesh has 4 directions and %d 90-degree "
                "turns, forming %zu abstract cycles:\n",
                TurnSet::total90Turns(2), abstractCycles(2).size());
    for (const AbstractCycle &cycle : abstractCycles(2)) {
        std::printf("  %s cycle: ",
                    cycle.clockwise ? "clockwise       "
                                    : "counterclockwise");
        for (const Turn &t : cycle.turns)
            std::printf("%s  ", t.toString().c_str());
        std::printf("\n");
    }

    const Mesh mesh(5, 5);
    std::printf("\n== Step 4: prohibit one turn per cycle ==\n");
    std::printf("Theorem 1: at least n(n-1) = %d turns must go.\n",
                minimumProhibitedTurns(2));
    std::printf("The named algorithms (verdicts by exact CDG "
                "analysis on %s):\n", mesh.name().c_str());
    showTurnSet("xy", dimensionOrderTurns(2), mesh);
    showTurnSet("west-first", westFirstTurns(), mesh);
    showTurnSet("north-last", northLastTurns(), mesh);
    showTurnSet("negative-first", negativeFirstTurns(2), mesh);

    std::printf("\n== Figure 4: breaking both cycles is not "
                "enough ==\n");
    int good = 0;
    for (const TwoTurnChoice &choice : enumerateTwoTurnChoices()) {
        const TurnSetRouting routing("choice", choice.turns, true);
        const CdgReport report = analyzeDependencies(mesh, routing);
        if (!report.acyclic) {
            std::printf("  %-42s DEADLOCKS, e.g. %s\n",
                        choice.toString().c_str(),
                        report.cycleToString(mesh).c_str());
        } else {
            ++good;
        }
    }
    std::printf("  ...and the remaining %d choices are deadlock "
                "free (the paper's 12).\n", good);

    std::printf("\n== Maximal adaptiveness ==\n");
    for (int n = 2; n <= 5; ++n) {
        std::printf("  n=%d: %3d turns, %2d cycles, prohibit %2d "
                    "(exactly a quarter)\n",
                    n, TurnSet::total90Turns(n),
                    static_cast<int>(abstractCycles(n).size()),
                    minimumProhibitedTurns(n));
    }
    return 0;
}
