/**
 * @file
 * The Figure 1 story, live: run the same stress workload through
 * unrestricted minimal fully adaptive routing (cyclic channel
 * dependency graph — it wedges, and the watchdog catches it) and
 * through west-first (two turns prohibited — it saturates
 * gracefully but never stops moving).
 */

#include <cstdio>

#include "turnnet/analysis/cdg.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/traffic/pattern.hpp"

using namespace turnnet;

namespace {

void
demo(const Mesh &mesh, const char *alg, std::uint64_t seed)
{
    const RoutingPtr routing = makeRouting({.name = alg, .dims = 2});

    const CdgReport cdg = analyzeDependencies(mesh, *routing);
    std::printf("%s: channel dependency graph is %s\n", alg,
                cdg.acyclic ? "ACYCLIC" : "CYCLIC");
    if (!cdg.acyclic) {
        std::printf("  witness cycle: %s\n",
                    cdg.cycleToString(mesh).c_str());
    }

    SimConfig config;
    config.load = 0.5;
    config.lengths = MessageLengthMix::fixed(200);
    config.watchdogCycles = 8000;
    config.warmupCycles = 100;
    config.measureCycles = 40000;
    config.drainCycles = 100;
    config.seed = seed;

    Simulator sim(mesh, routing, makeTraffic("uniform", mesh),
                  config);
    const SimResult result = sim.run();
    if (result.deadlocked) {
        std::printf("  simulation: DEADLOCK detected after %llu "
                    "cycles — a buffer stalled past the %llu-cycle "
                    "watchdog\n",
                    static_cast<unsigned long long>(result.cycles),
                    static_cast<unsigned long long>(
                        config.watchdogCycles));
    } else {
        std::printf("  simulation: no deadlock in %llu cycles "
                    "(worst buffer stall %llu); delivered %.0f "
                    "flits/us%s\n",
                    static_cast<unsigned long long>(result.cycles),
                    static_cast<unsigned long long>(
                        sim.worstFrontStall()),
                    result.acceptedFlitsPerUsec,
                    result.sustainable ? ""
                                       : " (saturated, but alive)");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    const Mesh mesh(4, 4);
    std::printf("Stress workload: uniform traffic at 0.5 "
                "flits/node/cycle, 200-flit worms, single-flit "
                "buffers, %s\n\n", mesh.name().c_str());

    // Seed 3 wedges the unrestricted baseline quickly; any seed
    // leaves the turn-model algorithms alive.
    demo(mesh, "fully-adaptive", 3);
    demo(mesh, "west-first", 3);
    demo(mesh, "negative-first", 3);

    std::printf("The turn model's point: prohibiting just two of "
                "the eight turns (a quarter) is what separates the "
                "survivors from the wedge.\n");
    return 0;
}
