/**
 * @file
 * The Figure 1 story, live: run the same stress workload through
 * unrestricted minimal fully adaptive routing (cyclic channel
 * dependency graph — it wedges, and the watchdog catches it) and
 * through west-first (two turns prohibited — it saturates
 * gracefully but never stops moving).
 *
 * When the watchdog fires, the demo dumps deadlock forensics: the
 * blocked worms with the channels they hold and the channels they
 * want, plus the cyclic wait that proves the wedge, cross-checked
 * against the routing algorithm's channel dependency graph.
 *
 * Options: --seed N, --json FILE (write the forensics of the last
 * deadlocked run as "turnnet.deadlock_forensics/1" JSON), --trace
 * (record flit events; each run writes "<alg>.<trace-out>"),
 * --trace-out FILE (default deadlock_trace.jsonl).
 */

#include <cstdio>
#include <string>

#include "turnnet/analysis/cdg.hpp"
#include "turnnet/common/cli.hpp"
#include "turnnet/network/simulator.hpp"
#include "turnnet/routing/registry.hpp"
#include "turnnet/topology/mesh.hpp"
#include "turnnet/trace/forensics.hpp"
#include "turnnet/traffic/pattern.hpp"

using namespace turnnet;

namespace {

struct DemoOptions
{
    std::uint64_t seed = 3;
    std::string json;
    bool trace = false;
    std::string traceOut = "deadlock_trace.jsonl";
};

void
demo(const Mesh &mesh, const char *alg, const DemoOptions &opts)
{
    const RoutingPtr routing = makeRouting({.name = alg, .dims = 2});

    const CdgReport cdg = analyzeDependencies(mesh, *routing);
    std::printf("%s: channel dependency graph is %s\n", alg,
                cdg.acyclic ? "ACYCLIC" : "CYCLIC");
    if (!cdg.acyclic) {
        std::printf("  witness cycle: %s\n",
                    cdg.cycleToString(mesh).c_str());
    }

    SimConfig config;
    config.load = 0.5;
    config.lengths = MessageLengthMix::fixed(200);
    config.watchdogCycles = 8000;
    config.warmupCycles = 100;
    config.measureCycles = 40000;
    config.drainCycles = 100;
    config.seed = opts.seed;
    config.trace.events = opts.trace;

    Simulator sim(mesh, routing, makeTraffic("uniform", mesh),
                  config);
    const SimResult result = sim.run();
    if (opts.trace && sim.trace() != nullptr) {
        const std::string path =
            std::string(alg) + "." + opts.traceOut;
        sim.trace()->writeJsonl(path);
        std::printf("  event trace: %s\n", path.c_str());
    }
    if (result.deadlocked) {
        std::printf("  simulation: DEADLOCK detected after %llu "
                    "cycles — a buffer stalled past the %llu-cycle "
                    "watchdog\n",
                    static_cast<unsigned long long>(result.cycles),
                    static_cast<unsigned long long>(
                        config.watchdogCycles));
        const DeadlockReport report = collectDeadlockForensics(sim);
        std::printf("%s", report.toString(mesh).c_str());
        if (!opts.json.empty()) {
            report.writeJson(mesh, opts.json);
            std::printf("  forensics JSON: %s\n", opts.json.c_str());
        }
    } else {
        std::printf("  simulation: no deadlock in %llu cycles "
                    "(worst buffer stall %llu); delivered %.0f "
                    "flits/us%s\n",
                    static_cast<unsigned long long>(result.cycles),
                    static_cast<unsigned long long>(
                        sim.worstFrontStall()),
                    result.acceptedFlitsPerUsec,
                    result.sustainable ? ""
                                       : " (saturated, but alive)");
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions cli = CliOptions::parse(argc, argv);
    DemoOptions opts;
    // Seed 3 wedges the unrestricted baseline quickly; any seed
    // leaves the turn-model algorithms alive.
    opts.seed = static_cast<std::uint64_t>(cli.getInt("seed", 3));
    opts.json = cli.getString("json", "");
    opts.trace = cli.getBool("trace", false);
    opts.traceOut = cli.getString("trace-out", opts.traceOut);

    const Mesh mesh(4, 4);
    std::printf("Stress workload: uniform traffic at 0.5 "
                "flits/node/cycle, 200-flit worms, single-flit "
                "buffers, %s\n\n", mesh.name().c_str());

    demo(mesh, "fully-adaptive", opts);
    demo(mesh, "west-first", opts);
    demo(mesh, "negative-first", opts);

    std::printf("The turn model's point: prohibiting just two of "
                "the eight turns (a quarter) is what separates the "
                "survivors from the wedge.\n");
    return 0;
}
